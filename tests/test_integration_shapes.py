"""Integration tests: the paper's qualitative results must emerge.

These use scaled-down inputs and the coarse sweep grid, so they exercise
the whole stack (workload -> runtime -> simulator -> FDT) in seconds
while checking the *shape* claims the figures make.
"""

from __future__ import annotations

import pytest

from repro.analysis.sweep import sweep_threads
from repro.fdt.policies import FdtMode, FdtPolicy, StaticPolicy
from repro.fdt.runner import run_application
from repro.sim.config import MachineConfig
from repro.workloads import get

CFG = MachineConfig.asplos08_baseline()
GRID = (1, 2, 4, 6, 8, 12, 16, 32)


@pytest.fixture(scope="module")
def pagemine_sweep():
    return sweep_threads(lambda: get("PageMine").build(0.2), GRID, CFG)


@pytest.fixture(scope="module")
def ed_sweep():
    return sweep_threads(lambda: get("ED").build(0.1), GRID, CFG)


# -- Figure 2 shape -----------------------------------------------------------

def test_pagemine_has_interior_minimum(pagemine_sweep):
    best = pagemine_sweep.best_threads
    assert 3 <= best <= 8, "CS-limited minimum should be a few threads"


def test_pagemine_32_threads_worse_than_1(pagemine_sweep):
    curve = {p.threads: p.cycles for p in pagemine_sweep.points}
    assert curve[32] > curve[1], "beyond the knee the CS dominates"


def test_pagemine_initial_speedup(pagemine_sweep):
    curve = {p.threads: p.cycles for p in pagemine_sweep.points}
    assert curve[2] < curve[1]


# -- Figure 4 shape -------------------------------------------------------------

def test_ed_time_flattens_after_saturation(ed_sweep):
    curve = {p.threads: p.cycles for p in ed_sweep.points}
    assert curve[8] < 0.2 * curve[1]
    # Flat beyond saturation (within a few percent).
    assert abs(curve[32] - curve[12]) / curve[12] < 0.1


def test_ed_bus_utilization_ramps_linearly_then_saturates(ed_sweep):
    util = {p.threads: p.bus_utilization for p in ed_sweep.points}
    assert util[1] == pytest.approx(0.143, abs=0.02), "paper: BU_1 ~ 14.3%"
    assert util[2] == pytest.approx(2 * util[1], rel=0.15)
    assert util[4] == pytest.approx(4 * util[1], rel=0.15)
    assert util[12] > 0.95
    assert util[32] > 0.95


def test_ed_single_thread_miss_interval_near_paper():
    from repro.fdt.runner import run_application
    from repro.sim.machine import Machine
    m = Machine(CFG)
    res = run_application(get("ED").build(0.1), StaticPolicy(1), machine=m)
    r = res.result
    interval = r.cycles / max(1, r.bus_transfers)
    assert 200 <= interval <= 250, "paper: a miss every ~225 cycles"


# -- SAT end-to-end ---------------------------------------------------------------

@pytest.mark.parametrize("name,scale", [("PageMine", 0.25), ("ISort", 0.5),
                                        ("GSearch", 0.5), ("EP", 0.5)])
def test_sat_close_to_best_static(name, scale):
    sweep = sweep_threads(lambda: get(name).build(scale), GRID, CFG)
    res = run_application(get(name).build(scale), FdtPolicy(FdtMode.SAT), CFG)
    # Within 35% of the sweep minimum (training overhead included; the
    # paper's 1% gap needs paper-scale iteration counts where training
    # is 1% of the loop rather than the 5-iteration floor).
    assert res.cycles <= sweep.min_cycles * 1.35
    # And far better than conventional 32-thread threading.
    baseline = sweep.point(32).cycles
    assert res.cycles < 0.7 * baseline


def test_sat_chooses_few_threads_for_cs_apps():
    for name in ("PageMine", "EP"):
        res = run_application(get(name).build(0.2),
                              FdtPolicy(FdtMode.SAT), CFG)
        assert 2 <= res.kernel_infos[0].threads <= 8


# -- BAT end-to-end -----------------------------------------------------------------

def test_bat_picks_saturation_point_for_ed(ed_sweep):
    res = run_application(get("ED").build(0.1), FdtPolicy(FdtMode.BAT), CFG)
    info = res.kernel_infos[0]
    assert info.threads in (7, 8), "paper: BAT predicts 7 (best 8)"
    assert res.cycles <= ed_sweep.min_cycles * 1.30
    assert res.power < 9


def test_bat_saves_most_of_the_power_for_ed(ed_sweep):
    res = run_application(get("ED").build(0.1), FdtPolicy(FdtMode.BAT), CFG)
    baseline_power = ed_sweep.point(32).power
    saving = 1 - res.power / baseline_power
    assert saving > 0.6, "paper: 78% power saving for ED"


def test_bat_chooses_17ish_for_convert():
    res = run_application(get("convert").build(1.0),
                          FdtPolicy(FdtMode.BAT), CFG)
    assert res.kernel_infos[0].threads in (16, 17, 18), "paper: 17"


def test_bat_adapts_to_bus_bandwidth():
    half = CFG.with_bandwidth(0.5)
    double = CFG.with_bandwidth(2.0)
    t_half = run_application(get("convert").build(1.0),
                             FdtPolicy(FdtMode.BAT),
                             half).kernel_infos[0].threads
    t_double = run_application(get("convert").build(1.0),
                               FdtPolicy(FdtMode.BAT),
                               double).kernel_infos[0].threads
    assert t_half <= 10, "paper: half bandwidth saturates at 8 threads"
    assert t_double == 32, "paper: double bandwidth keeps scaling"


# -- combined policy -----------------------------------------------------------------

def test_combined_keeps_scalable_apps_at_full_width():
    for name in ("BT", "BScholes", "SConv"):
        res = run_application(get(name).build(0.25),
                              FdtPolicy(FdtMode.COMBINED), CFG)
        assert all(t == 32 for t in res.threads_used), (
            f"{name} should keep all cores")


def test_combined_uses_different_counts_for_mtwister_kernels():
    res = run_application(get("MTwister").build(1.0),
                          FdtPolicy(FdtMode.COMBINED), CFG)
    t_gen, t_bm = res.threads_used
    assert t_gen == 32, "paper: generation kernel scales to 32"
    assert 10 <= t_bm <= 14, "paper: Box-Muller saturates at 12"
    assert 16 <= res.mean_threads <= 28, "paper: average ~21 threads"


def test_combined_beats_baseline_on_time_and_power_for_cs_apps():
    for name in ("PageMine", "ISort"):
        base = run_application(get(name).build(0.2), StaticPolicy(), CFG)
        fdt = run_application(get(name).build(0.2),
                              FdtPolicy(FdtMode.COMBINED), CFG)
        assert fdt.cycles < 0.75 * base.cycles
        assert fdt.power < 0.4 * base.power
