"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in ("ConfigError", "SimulationError", "DeadlockError",
                 "ProgramError", "TrainingError", "WorkloadError"):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_deadlock_is_a_simulation_error():
    assert issubclass(errors.DeadlockError, errors.SimulationError)


def test_single_except_catches_library_failures():
    from repro.sim.config import MachineConfig
    with pytest.raises(errors.ReproError):
        MachineConfig(num_cores=0)
    from repro.workloads import get
    with pytest.raises(errors.ReproError):
        get("nope")


def test_programming_errors_are_not_wrapped():
    """TypeError etc. must propagate, not be swallowed into ReproError."""
    from repro.models.sat_model import execution_time
    with pytest.raises(TypeError):
        execution_time("a", "b")  # type: ignore[arg-type]
