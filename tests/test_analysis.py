"""Unit tests for the sweep/oracle/report analysis helpers."""

from __future__ import annotations

from typing import Iterator

import pytest

from repro.analysis.oracle import oracle_choice
from repro.analysis.report import ascii_bars, ascii_series, ascii_table, gmean
from repro.analysis.sweep import SweepResult, ThreadPoint, sweep_threads
from repro.errors import ConfigError
from repro.fdt.kernel import TeamParallelKernel
from repro.fdt.runner import Application
from repro.isa.ops import BarrierWait, Compute, Lock, Op, Unlock
from repro.sim.config import MachineConfig


class _CsKernel(TeamParallelKernel):
    """Figure-1-style kernel: per-thread merge makes total CS time grow
    linearly with the team, so the sweep has an interior minimum."""

    name = "cs"

    @property
    def total_iterations(self) -> int:
        return 64

    def team_iteration(self, i: int, tid: int, team: int) -> Iterator[Op]:
        yield Compute(1600 // team)
        yield Lock(0)
        yield Compute(200)
        yield Unlock(0)
        yield BarrierWait(0)


def build() -> Application:
    return Application.single(_CsKernel())


@pytest.fixture(scope="module")
def sweep() -> SweepResult:
    return sweep_threads(build, thread_counts=(1, 2, 4, 8),
                         config=MachineConfig.small())


def test_sweep_has_requested_points(sweep: SweepResult):
    assert sweep.thread_counts == (1, 2, 4, 8)


def test_sweep_clamps_to_core_count():
    result = sweep_threads(build, thread_counts=(1, 4, 64),
                           config=MachineConfig.small())
    assert result.thread_counts == (1, 4)


def test_sweep_point_lookup(sweep: SweepResult):
    p = sweep.point(4)
    assert p.threads == 4
    with pytest.raises(ConfigError):
        sweep.point(3)


def test_sweep_normalized_curve_starts_at_one(sweep: SweepResult):
    curve = sweep.normalized_curve(base_threads=1)
    assert curve[0] == pytest.approx(1.0)


def test_sweep_best_threads_interior(sweep: SweepResult):
    # 25% CS: optimum = sqrt(3) ~ 2.
    assert sweep.best_threads in (1, 2, 4)
    assert sweep.min_cycles == sweep.point(sweep.best_threads).cycles


def test_sweep_power_tracks_threads(sweep: SweepResult):
    assert sweep.point(8).power > sweep.point(1).power


def test_sweep_rejects_bad_thread_counts():
    with pytest.raises(ConfigError):
        sweep_threads(build, thread_counts=(0,), config=MachineConfig.small())
    with pytest.raises(ConfigError):
        sweep_threads(build, thread_counts=(64,), config=MachineConfig.small())


def test_thread_point_normalization():
    p = ThreadPoint(threads=2, cycles=500, power=2.0, bus_utilization=0.1)
    assert p.normalized(1000) == 0.5
    with pytest.raises(ConfigError):
        p.normalized(0)


# -- oracle ---------------------------------------------------------------------

def test_oracle_picks_fewest_within_tolerance():
    points = tuple(
        ThreadPoint(threads=t, cycles=c, power=t, bus_utilization=0.0)
        for t, c in [(1, 1000), (2, 600), (4, 502), (8, 500), (16, 505)])
    sweep = SweepResult(app_name="x", points=points)
    choice = oracle_choice(sweep, tolerance=0.01)
    assert choice.threads == 4  # 502 within 1% of 500; 600 is not
    assert choice.slowdown_vs_min <= 1.01


def test_oracle_zero_tolerance_picks_minimum():
    points = tuple(
        ThreadPoint(threads=t, cycles=c, power=t, bus_utilization=0.0)
        for t, c in [(1, 1000), (2, 600), (4, 500)])
    sweep = SweepResult(app_name="x", points=points)
    assert oracle_choice(sweep, tolerance=0.0).threads == 4


def test_oracle_rejects_negative_tolerance():
    points = (ThreadPoint(1, 100, 1.0, 0.0),)
    with pytest.raises(ValueError):
        oracle_choice(SweepResult("x", points), tolerance=-0.1)


# -- reporting --------------------------------------------------------------------

def test_gmean_basics():
    assert gmean([2.0, 8.0]) == pytest.approx(4.0)
    assert gmean([1.0, 1.0, 1.0]) == pytest.approx(1.0)


def test_gmean_rejects_empty_and_nonpositive():
    with pytest.raises(ValueError):
        gmean([])
    with pytest.raises(ValueError):
        gmean([1.0, 0.0])


def test_ascii_table_alignment():
    out = ascii_table(("name", "value"), [("alpha", 1.0), ("b", 22.5)])
    lines = out.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert "22.500" in lines[3]


def test_ascii_bars_render():
    out = ascii_bars(["a", "bb"], [0.5, 1.0], width=10)
    lines = out.splitlines()
    assert lines[0].count("#") == 5
    assert lines[1].count("#") == 10


def test_ascii_bars_reject_mismatched_inputs():
    with pytest.raises(ValueError):
        ascii_bars(["a"], [1.0, 2.0])


def test_ascii_series_renders_every_point():
    out = ascii_series([1, 2, 3, 4], [1.0, 0.5, 0.25, 0.25], height=5)
    assert out.count("*") == 4


def test_ascii_series_rejects_empty():
    with pytest.raises(ValueError):
        ascii_series([], [])
