"""Unit tests for the banked DRAM with open-page row buffers."""

from __future__ import annotations

import pytest

from repro.sim.config import MachineConfig
from repro.sim.dram import Dram


@pytest.fixture
def dram() -> Dram:
    return Dram(MachineConfig.asplos08_baseline())


def cfg() -> MachineConfig:
    return MachineConfig.asplos08_baseline()


def test_first_access_is_closed_row(dram: Dram):
    done = dram.access(line=0, now=0)
    assert done == cfg().dram_closed_row_latency
    assert dram.stats.row_closed == 1


def test_second_access_same_granule_is_row_hit(dram: Dram):
    t1 = dram.access(line=0, now=0)
    t2 = dram.access(line=1, now=t1)
    assert t2 - t1 == cfg().dram_row_hit_latency
    assert dram.stats.row_hits == 1


def test_different_row_same_bank_conflicts(dram: Dram):
    # Find two lines mapping to the same bank but different rows.
    bank0 = dram.bank_of(0)
    other = next(line for line in range(16, 1 << 20, 16)
                 if dram.bank_of(line) == bank0 and dram.row_of(line) != dram.row_of(0))
    t1 = dram.access(0, now=0)
    t2 = dram.access(other, now=t1)
    assert t2 - t1 == cfg().dram_row_conflict_latency
    assert dram.stats.row_conflicts == 1


def test_bank_reservation_serializes(dram: Dram):
    t1 = dram.access(0, now=0)
    # Request to the same bank issued at time 0 must queue behind it.
    t2 = dram.access(1, now=0)
    assert t2 == t1 + cfg().dram_row_hit_latency
    assert dram.stats.total_queue_cycles == t1


def test_different_banks_proceed_in_parallel(dram: Dram):
    line_a = 0
    line_b = next(l for l in range(16, 1 << 16, 16)
                  if dram.bank_of(l) != dram.bank_of(0))
    t1 = dram.access(line_a, now=0)
    t2 = dram.access(line_b, now=0)
    assert t2 <= t1 + 1 or t2 == cfg().dram_closed_row_latency


def test_sequential_stream_mostly_row_hits(dram: Dram):
    now = 0
    for line in range(512):
        now = dram.access(line, now)
    assert dram.stats.row_hit_rate > 0.9


def test_granule_interleaving_spreads_banks(dram: Dram):
    granule = cfg().dram_granule_lines
    banks = {dram.bank_of(g * granule) for g in range(256)}
    assert len(banks) == cfg().dram_banks


def test_lines_within_granule_share_bank(dram: Dram):
    granule = cfg().dram_granule_lines
    banks = {dram.bank_of(line) for line in range(granule)}
    assert len(banks) == 1


def test_row_hit_rate_zero_when_unused(dram: Dram):
    assert dram.stats.row_hit_rate == 0.0


def test_equal_paced_streams_do_not_phase_lock():
    """Regression: stride-aligned streams must not camp in shared banks.

    With 7 equally-paced streams at a power-of-two-ish stride, a weak
    bank hash phase-locks pairs into the same bank and the row-hit rate
    collapses; the avalanche hash keeps collisions transient.
    """
    d = Dram(cfg())
    n_lines = 32000
    starts = [int(t * n_lines / 7) for t in range(7)]
    now = 0
    for k in range(0, 2000):
        for s in starts:
            d.access(s + k, now)
        now += 220
    assert d.stats.row_hit_rate > 0.75


def test_busy_until_reports_bank_reservation(dram: Dram):
    done = dram.access(0, now=0)
    assert dram.busy_until(dram.bank_of(0)) == done
