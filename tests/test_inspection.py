"""Tests for the machine-introspection report."""

from __future__ import annotations

import json

from repro.analysis.inspection import machine_report, machine_report_json
from repro.fdt.policies import StaticPolicy
from repro.fdt.runner import run_application
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.workloads import get


def run_machine() -> Machine:
    m = Machine(MachineConfig.small())
    run_application(get("EP").build(0.1), StaticPolicy(4), machine=m)
    return m


def test_report_is_json_serializable():
    m = run_machine()
    text = machine_report_json(m)
    parsed = json.loads(text)
    assert parsed["cycles"] > 0


def test_report_cross_checks_internally():
    m = run_machine()
    r = machine_report(m)
    assert r["config"]["num_cores"] == 8
    assert len(r["cores"]) == 8
    assert len(r["l1"]["per_core"]) == 8
    # Memory op counts equal L1 accesses (every op starts at L1).
    l1 = r["l1"]
    assert (l1["total_hits"] + l1["total_misses"]
            == r["memory_ops"]["loads"] + r["memory_ops"]["stores"])
    # Bus transfers match DRAM accesses minus posted writebacks' reads.
    assert r["bus"]["transfers"] >= r["l3"]["misses"]
    # Lock traffic happened (EP has a critical section per block).
    assert r["locks"]["acquisitions"] > 0
    assert r["barriers"]["episodes"] > 0


def test_report_on_fresh_machine_is_all_zero():
    m = Machine(MachineConfig.small())
    r = machine_report(m)
    assert r["cycles"] == 0
    assert r["bus"]["transfers"] == 0
    assert r["dram"]["accesses"] == 0
    assert r["locks"]["acquisitions"] == 0


def test_report_row_hit_counters_sum():
    m = run_machine()
    d = machine_report(m)["dram"]
    assert d["row_hits"] + d["row_conflicts"] + d["row_closed"] == d["accesses"]
