"""Unit tests for the workload registry and shared helpers."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.isa.ops import Compute, Load, Store
from repro.workloads import Category, all_specs, by_category, get
from repro.workloads.base import (
    AddressSpace,
    scan_block,
    update_block,
    write_block,
)


def test_all_twelve_workloads_registered():
    names = [s.name for s in all_specs()]
    assert names == ["PageMine", "ISort", "GSearch", "EP",
                     "ED", "convert", "Transpose", "MTwister",
                     "BT", "MG", "BScholes", "SConv"]


def test_categories_match_table2():
    assert [s.name for s in by_category(Category.CS_LIMITED)] == [
        "PageMine", "ISort", "GSearch", "EP"]
    assert [s.name for s in by_category(Category.BW_LIMITED)] == [
        "ED", "convert", "Transpose", "MTwister"]
    assert [s.name for s in by_category(Category.SCALABLE)] == [
        "BT", "MG", "BScholes", "SConv"]


def test_get_unknown_workload_raises():
    with pytest.raises(WorkloadError):
        get("NotAWorkload")


def test_every_spec_has_paper_input():
    for spec in all_specs():
        assert spec.paper_input
        assert spec.repro_input
        assert spec.description


def test_address_space_regions_are_disjoint():
    space = AddressSpace()
    a = space.alloc(1000)
    b = space.alloc(64)
    c = space.alloc(1)
    assert a + 1000 <= b
    assert b + 64 <= c


def test_address_space_alignment():
    space = AddressSpace()
    space.alloc(3)
    b = space.alloc(64)
    assert b % 64 == 0


def test_address_space_rejects_empty_alloc():
    with pytest.raises(WorkloadError):
        AddressSpace().alloc(0)


def test_scan_block_covers_every_line():
    ops = list(scan_block(base=0, nbytes=256, instr_per_line=10))
    loads = [op for op in ops if isinstance(op, Load)]
    assert [op.addr for op in loads] == [0, 64, 128, 192]
    computes = [op for op in ops if isinstance(op, Compute)]
    assert len(computes) == 4


def test_scan_block_zero_compute_emits_loads_only():
    ops = list(scan_block(base=0, nbytes=128, instr_per_line=0))
    assert all(isinstance(op, Load) for op in ops)


def test_write_block_stores_every_line():
    ops = list(write_block(base=128, nbytes=128, instr_per_line=5))
    stores = [op for op in ops if isinstance(op, Store)]
    assert [op.addr for op in stores] == [128, 192]


def test_update_block_is_read_modify_write():
    ops = list(update_block(base=0, nbytes=64, instr_per_line=5))
    assert isinstance(ops[0], Load)
    assert isinstance(ops[1], Compute)
    assert isinstance(ops[2], Store)
    assert ops[0].addr == ops[2].addr
