"""The full FDT decision matrix: every workload lands in its class.

One parametrized test per Table 2 workload (MTwister excluded here —
its L3-overflow property needs near-full scale, covered by the Figure
12/14 benchmarks) checking that combined FDT's decision matches the
workload's class at test scale.
"""

from __future__ import annotations

import pytest

from repro.fdt.policies import FdtMode, FdtPolicy
from repro.fdt.runner import run_application
from repro.sim.config import MachineConfig
from repro.workloads import Category, get

CFG = MachineConfig.asplos08_baseline()

# name -> (scale, expected band of the *final* kernel's decision)
MATRIX = {
    "PageMine": (0.2, (2, 8)),
    "ISort": (0.5, (4, 9)),
    "GSearch": (0.5, (2, 8)),
    "EP": (0.5, (2, 8)),
    "ED": (0.1, (6, 10)),
    "convert": (1.0, (14, 20)),
    "Transpose": (0.2, (6, 10)),
    "BT": (0.5, (32, 32)),
    "MG": (0.5, (32, 32)),
    "BScholes": (0.5, (32, 32)),
    "SConv": (0.5, (32, 32)),
}


@pytest.mark.parametrize("name", sorted(MATRIX))
def test_fdt_decision_matches_class(name):
    scale, (lo, hi) = MATRIX[name]
    res = run_application(get(name).build(scale),
                          FdtPolicy(FdtMode.COMBINED), CFG)
    decision = res.kernel_infos[-1].threads
    assert lo <= decision <= hi, (
        f"{name}: FDT chose {decision}, expected [{lo}, {hi}]")


@pytest.mark.parametrize("name", sorted(MATRIX))
def test_limiter_attribution_matches_class(name):
    """The *reason* matches too: CS apps are P_CS-bound, BW apps are
    P_BW-bound, scalable apps hit neither bound."""
    scale, _band = MATRIX[name]
    category = get(name).category
    res = run_application(get(name).build(scale),
                          FdtPolicy(FdtMode.COMBINED), CFG)
    est = res.kernel_infos[-1].estimates
    if category is Category.CS_LIMITED:
        assert est.p_cs < est.p_bw, f"{name}: SAT should bind"
    elif category is Category.BW_LIMITED:
        assert est.p_bw < est.p_cs, f"{name}: BAT should bind"
    else:
        assert est.p_fdt == 32, f"{name}: neither limiter should bind"
