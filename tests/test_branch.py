"""Unit tests for the gshare branch predictor."""

from __future__ import annotations

import pytest

from repro.sim.branch import GsharePredictor


def test_learns_always_taken_branch():
    p = GsharePredictor(1024)
    for _ in range(8):
        p.update(pc=0x400, taken=True)
    assert p.predict(0x400) is True


def test_learns_alternating_pattern_via_history():
    p = GsharePredictor(4096)
    # Warm up: alternating T/N at one PC. Gshare's history register lets
    # it separate the two phases into different table entries.
    outcomes = [i % 2 == 0 for i in range(400)]
    for t in outcomes:
        p.update(pc=0x1000, taken=t)
    correct = sum(p.update(pc=0x1000, taken=(i % 2 == 0)) for i in range(100))
    assert correct >= 95


def test_mispredictions_counted():
    p = GsharePredictor(1024)
    for _ in range(4):
        p.update(pc=0x40, taken=True)
    p.update(pc=0x40, taken=False)  # surprise
    assert p.stats.mispredictions >= 1
    assert p.stats.predictions == 5


def test_accuracy_with_no_branches_is_one():
    assert GsharePredictor(64).stats.accuracy == 1.0


def test_accuracy_tracks_ratio():
    p = GsharePredictor(1024)
    for _ in range(10):
        p.update(pc=0x8, taken=True)
    assert p.stats.accuracy > 0.7


def test_entries_must_be_power_of_two():
    with pytest.raises(ValueError):
        GsharePredictor(1000)
    with pytest.raises(ValueError):
        GsharePredictor(0)


def test_table_default_size_matches_4kb():
    from repro.sim.config import MachineConfig
    cfg = MachineConfig.asplos08_baseline()
    assert cfg.gshare_entries == 16384  # 4 KB of 2-bit counters


def test_counters_saturate():
    p = GsharePredictor(64)
    for _ in range(100):
        p.update(pc=0, taken=True)
    # One not-taken cannot flip a saturated counter to not-taken.
    p.update(pc=0, taken=False)
    assert p.predict(0) is True
