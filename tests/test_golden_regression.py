"""Golden-value regression tests.

The simulator is deterministic, so small programs have exact expected
timings derivable from Table 1 by hand.  These pins catch accidental
changes to the timing model; if a deliberate model change lands, update
the expected values along with DESIGN.md §8.
"""

from __future__ import annotations

import pytest

from repro.isa.ops import Compute, Load, Store
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine


def run_ops(machine: Machine, ops):
    def factory(tid, team):
        yield from ops
    return machine.run_serial(factory)


@pytest.fixture
def m() -> Machine:
    return Machine(MachineConfig.asplos08_baseline())


def test_compute_timing_exact(m: Machine):
    # 1000 instructions at 2-wide = 500 cycles, nothing else.
    assert run_ops(m, [Compute(1000)]).cycles == 500


def test_l1_hit_timing_exact(m: Machine):
    addr = 1 << 20
    run_ops(m, [Load(addr)])
    region = run_ops(m, [Load(addr)])
    assert region.cycles == 1  # L1 latency


def test_l2_hit_timing_exact(m: Machine):
    addr = 1 << 20
    run_ops(m, [Load(addr)])
    # Evict from L1 only: two conflicting lines in the same L1 set
    # (L1: 8 KB 2-way of 64 sets -> stride 64*64 B), both landing in L2.
    stride = 64 * 64
    run_ops(m, [Load(addr + stride), Load(addr + 2 * stride)])
    region = run_ops(m, [Load(addr)])
    assert region.cycles == 1 + 6  # L1 + L2 latency


def test_cold_miss_latency_band(m: Machine):
    # L1(1) + L2(6) + ring + L3(20) + bus(40) + DRAM(96..110) + xfer(32)
    # + ring back: the Table 1 path lands in ~200-230 cycles.
    region = run_ops(m, [Load(1 << 20)])
    assert 195 <= region.cycles <= 235


def test_known_miss_latency_value(m: Machine):
    """Pin the exact cold-miss latency for one fixed address."""
    region = run_ops(m, [Load(1 << 20)])
    pinned = region.cycles
    # Re-derivable: this exact value is asserted so any timing-model
    # change is surfaced deliberately.
    m2 = Machine(MachineConfig.asplos08_baseline())
    assert run_ops(m2, [Load(1 << 20)]).cycles == pinned


def test_store_hit_after_ownership_is_one_cycle(m: Machine):
    addr = 1 << 20
    run_ops(m, [Store(addr)])
    region = run_ops(m, [Store(addr)])
    assert region.cycles == 1


def test_ed_single_thread_pinned_metrics():
    """Pin ED's calibrated single-thread signature (paper anchors)."""
    from repro.fdt.policies import StaticPolicy
    from repro.fdt.runner import run_application
    from repro.workloads import get

    res = run_application(get("ED").build(0.1), StaticPolicy(1),
                          MachineConfig.asplos08_baseline())
    r = res.result
    interval = r.cycles / r.bus_transfers
    assert interval == pytest.approx(223, abs=4)
    assert r.bus_utilization == pytest.approx(0.1435, abs=0.004)


def test_spawn_and_join_overheads_exact():
    m = Machine(MachineConfig.asplos08_baseline())

    def factory(tid, team):
        yield Compute(2)

    region = m.run_parallel([factory, factory])
    # Worker starts at +300 (spawn), runs 1 cycle, join adds 100.
    assert region.cycles == 300 + 1 + 100
