"""Tests for the CSV export helpers."""

from __future__ import annotations

import csv
import io

import pytest

from repro.analysis.export import runs_to_csv, series_to_csv, sweep_to_csv
from repro.analysis.sweep import SweepResult, ThreadPoint
from repro.fdt.policies import StaticPolicy
from repro.fdt.runner import run_application
from repro.sim.config import MachineConfig
from repro.workloads import get


def parse(text: str) -> list[dict[str, str]]:
    return list(csv.DictReader(io.StringIO(text)))


def make_sweep() -> SweepResult:
    points = tuple(
        ThreadPoint(threads=t, cycles=1000 // t, power=float(t),
                    bus_utilization=0.1 * t)
        for t in (1, 2, 4))
    return SweepResult(app_name="x", points=points)


def test_sweep_csv_rows_and_normalization():
    rows = parse(sweep_to_csv(make_sweep()))
    assert len(rows) == 3
    assert rows[0]["norm_time"] == "1.0"
    assert float(rows[2]["norm_time"]) == pytest.approx(0.25)
    assert rows[1]["threads"] == "2"


def test_sweep_csv_writes_file(tmp_path):
    path = tmp_path / "sweep.csv"
    sweep_to_csv(make_sweep(), path)
    assert path.exists()
    assert parse(path.read_text())[0]["cycles"] == "1000"


def test_runs_csv_round_trips_run_metadata():
    cfg = MachineConfig.small()
    run = run_application(get("EP").build(0.1), StaticPolicy(2), cfg)
    rows = parse(runs_to_csv([run]))
    assert rows[0]["application"] == "EP"
    assert rows[0]["policy"] == "static-2"
    assert rows[0]["threads"] == "2"
    assert int(rows[0]["cycles"]) > 0


def test_series_csv_alignment_checked():
    with pytest.raises(ValueError):
        series_to_csv([1, 2], {"a": [1]})


def test_series_csv_multiple_columns():
    text = series_to_csv([1, 2, 3], {"a": [10, 20, 30], "b": [0.1, 0.2, 0.3]},
                         x_name="threads")
    rows = parse(text)
    assert rows[0] == {"threads": "1", "a": "10", "b": "0.1"}
    assert len(rows) == 3
