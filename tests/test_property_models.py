"""Property-based tests for the analytical models (hypothesis)."""

from __future__ import annotations

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.models.bat_model import BatModel
from repro.models.combined import CombinedModel, combined_thread_choice
from repro.models.sat_model import SatModel, optimal_threads_cs

positive = st.floats(min_value=1e-3, max_value=1e9, allow_nan=False,
                     allow_infinity=False)
utilization = st.floats(min_value=1e-4, max_value=1.0)
threads = st.integers(min_value=1, max_value=256)


@given(t_nocs=positive, t_cs=positive)
def test_sat_optimum_is_square_root(t_nocs, t_cs):
    p = optimal_threads_cs(t_nocs, t_cs)
    assert p * p == math.isclose(t_nocs / t_cs, p * p) or math.isclose(
        p, math.sqrt(t_nocs / t_cs), rel_tol=1e-9)


@given(t_nocs=positive, t_cs=positive)
@settings(max_examples=200)
def test_sat_continuous_optimum_beats_neighbours(t_nocs, t_cs):
    m = SatModel(t_nocs, t_cs)
    p = m.optimal_threads()
    assume(p >= 1.0)
    t_opt = t_nocs / p + p * t_cs
    for other in (p * 0.5, p * 2.0):
        assert t_opt <= t_nocs / other + other * t_cs + 1e-9


@given(t_nocs=positive, t_cs=positive, cores=st.integers(1, 64))
def test_sat_integer_prediction_near_optimal(t_nocs, t_cs, cores):
    """The rounded prediction is never beaten by any integer by more
    than the rounding loss (checked against exhaustive argmin)."""
    m = SatModel(t_nocs, t_cs)
    predicted = m.predicted_thread_count(cores)
    best = min(range(1, cores + 1), key=m.execution_time)
    assert m.execution_time(predicted) <= m.execution_time(best) * 1.5


@given(t_nocs=positive, t_cs=positive)
def test_sat_execution_time_positive(t_nocs, t_cs):
    m = SatModel(t_nocs, t_cs)
    for p in (1, 2, 7, 32):
        assert m.execution_time(p) > 0


@given(bu1=utilization, p=threads)
def test_bat_utilization_capped_and_monotone(bu1, p):
    m = BatModel(t1=100.0, bu1=bu1)
    u = m.bus_utilization(p)
    assert 0.0 <= u <= 1.0
    assert m.bus_utilization(p + 1) >= u


@given(bu1=utilization, p=threads)
def test_bat_time_monotone_nonincreasing(bu1, p):
    m = BatModel(t1=100.0, bu1=bu1)
    assert m.execution_time(p + 1) <= m.execution_time(p) + 1e-9


@given(bu1=utilization)
def test_bat_time_flat_beyond_saturation(bu1):
    m = BatModel(t1=100.0, bu1=bu1)
    p_bw = m.saturation_threads()
    p = int(math.ceil(p_bw)) + 1
    assert math.isclose(m.execution_time(p), m.execution_time(p + 5))


@given(bu1=utilization, cores=st.integers(1, 64))
def test_bat_prediction_saturates_the_bus(bu1, cores):
    m = BatModel(t1=100.0, bu1=bu1)
    predicted = m.predicted_thread_count(cores)
    # Either the prediction saturates the bus, or the cores ran out.
    assert m.bus_utilization(predicted) >= 0.999 or predicted == cores


@given(t_nocs=positive, t_cs=positive, bu1=utilization,
       cores=st.integers(2, 64))
@settings(max_examples=200)
def test_eq7_is_optimal_in_the_combined_model(t_nocs, t_cs, bu1, cores):
    """The appendix claim: min(P_CS, P_BW, cores) minimizes Eq. 1+6.

    Rounding can shift the pick by one, so compare execution times with
    a small tolerance rather than the argmin indices.
    """
    model = CombinedModel(sat=SatModel(t_nocs, t_cs),
                          bat=BatModel(t1=t_nocs, bu1=bu1))
    choice = model.eq7_choice(cores)
    brute = model.minimizer(cores)
    assert model.execution_time(choice) <= model.execution_time(brute) * 1.6


@given(p_cs=st.floats(1.0, 64.0), p_bw=st.floats(1.0, 64.0),
       cores=st.integers(1, 64))
def test_eq7_choice_bounded(p_cs, p_bw, cores):
    choice = combined_thread_choice(p_cs, p_bw, cores)
    assert 1 <= choice <= cores
    assert choice <= max(1, round(p_cs))
    assert choice <= max(1, math.ceil(p_bw - 1e-9))
