"""Tests for the static workload analyzer (repro.check.static).

The three seeded-defect fixtures must each be proved broken with their
own distinct finding code; every Table 2 workload must analyze clean at
1, 4, and 16 threads; and the static SAT priors must agree with the
measured training estimates within the documented tolerance.
"""

from __future__ import annotations

import json
from typing import Iterator

import pytest

from repro.check import STATIC, analyze_application, analyze_workload
from repro.check.static import AbstractExecutor, StaticCheckConfig
from repro.check.static.barriers import barrier_findings
from repro.check.static.lints import lint_findings
from repro.check.static.locks import lock_fault_findings, lock_order_findings
from repro.check.static.profile import profile_team, team_priors
from repro.errors import ConfigError, WorkloadError
from repro.fdt.kernel import TeamParallelKernel
from repro.fdt.priors import CS_FRACTION_RTOL, derive_priors, measure_estimates
from repro.fdt.runner import Application
from repro.isa.ops import (
    BarrierWait,
    Branch,
    Compute,
    CounterKind,
    Load,
    Lock,
    Op,
    ReadCounter,
    Store,
    Unlock,
)
from repro.sim.config import MachineConfig
from repro.workloads import all_specs, get
from repro.workloads.synthetic import static_fixtures

BASE = MachineConfig.asplos08_baseline()


def _run_one(*ops: Op, config: StaticCheckConfig | None = None):
    """Summarize a literal op list as thread 0 of a team of one."""
    executor = AbstractExecutor(config, BASE)
    return executor.run_thread(iter(ops), thread_id=0, num_threads=1)


def _team(factory, num_threads: int, name: str = "t",
          config: StaticCheckConfig | None = None):
    executor = AbstractExecutor(config, BASE)
    return executor.run_team(name, [factory] * num_threads, num_threads)


# -- abstract executor ------------------------------------------------------

def test_compute_cost_uses_issue_width():
    s = _run_one(Compute(100))
    assert s.est_cycles == (100 + BASE.issue_width - 1) // BASE.issue_width
    assert s.instructions == 100
    assert s.computes == 1


def test_first_touch_is_cold_miss_repeat_is_hit():
    s = _run_one(Load(0x1000), Load(0x1008), Load(0x2000))
    cold = (BASE.l3_latency + BASE.bus_latency
            + BASE.bus_cycles_per_line + BASE.dram_row_hit_latency)
    # Two distinct lines cold, one repeat within the first line.
    assert s.est_cycles == 2 * cold + BASE.l1_latency
    assert s.est_bus_busy == 2 * BASE.bus_cycles_per_line
    assert s.distinct_lines == 2


def test_cs_cycles_attributed_while_lock_held():
    s = _run_one(Compute(10), Lock(1), Compute(10), Unlock(1), Compute(10))
    per_compute = (10 + BASE.issue_width - 1) // BASE.issue_width
    # CS share: the Lock op plus the protected compute (the Unlock's own
    # cycle lands after the lock is released).
    assert s.est_cs_cycles == per_compute + 1
    assert s.cs_instructions == 10
    assert len(s.lock_regions) == 1
    region = s.lock_regions[0]
    assert region.closed and region.instructions == 10


def test_counter_stub_is_monotone_abstract_clock():
    def program() -> Iterator[Op]:
        first = yield ReadCounter(CounterKind.CYCLES)
        yield Compute(100)
        second = yield ReadCounter(CounterKind.CYCLES)
        assert second > first
        yield Store(0x40 * (second - first))

    s = AbstractExecutor(None, BASE).run_thread(program(), 0, 1)
    assert s.counter_reads == 2
    assert s.stores == 1


def test_lock_faults_recorded_not_raised():
    s = _run_one(Lock(1), Lock(1), Unlock(1), Unlock(1), Unlock(2))
    kinds = [f.kind for f in s.lock_faults]
    assert "static-double-acquire" in kinds
    assert "static-unlock-of-unheld" in kinds


def test_held_at_exit_recorded():
    s = _run_one(Lock(4), Compute(2))
    assert [f.kind for f in s.lock_faults] == ["static-held-at-exit"]
    assert s.lock_faults[0].lock_id == 4


def test_unlock_mismatch_recovers_without_cascade():
    s = _run_one(Lock(1), Lock(2), Unlock(1), Unlock(2))
    assert [f.kind for f in s.lock_faults] == ["static-unlock-mismatch"]


def test_lock_order_edges_recorded_once():
    s = _run_one(Lock(1), Lock(2), Unlock(2), Unlock(1),
                 Lock(1), Lock(2), Unlock(2), Unlock(1))
    assert list(s.lock_order_edges) == [(1, 2)]


def test_op_budget_truncates_and_suppresses_exit_faults():
    def endless() -> Iterator[Op]:
        while True:
            yield Compute(1)

    config = StaticCheckConfig(max_ops_per_thread=100)
    s = AbstractExecutor(config, BASE).run_thread(endless(), 0, 1)
    assert s.truncated
    assert s.ops == 100

    def endless_locked() -> Iterator[Op]:
        yield Lock(0)
        while True:
            yield Compute(1)

    s = AbstractExecutor(config, BASE).run_thread(endless_locked(), 0, 1)
    assert s.truncated
    assert not s.lock_faults  # held-at-exit unknown for truncated streams


def test_branch_sites_and_negative_pcs():
    s = _run_one(Branch(7, True), Branch(7, False), Branch(-1, True))
    assert s.branch_sites[7] == [1, 1]
    assert s.negative_branch_pcs == [-1]


def test_rejects_foreign_op():
    with pytest.raises(TypeError):
        _run_one("not-an-op")  # type: ignore[arg-type]


def test_config_validation():
    with pytest.raises(ConfigError):
        StaticCheckConfig(max_ops_per_thread=0)
    with pytest.raises(ConfigError):
        StaticCheckConfig(max_findings=0)
    with pytest.raises(ConfigError):
        StaticCheckConfig(min_branch_observations=1)


# -- passes -----------------------------------------------------------------

def test_barrier_sequence_divergence_detected():
    def factory_for(tid_barrier: dict[int, int]):
        def factory(tid: int, team: int) -> Iterator[Op]:
            yield Compute(1)
            yield BarrierWait(tid_barrier[tid])
        return factory

    executor = AbstractExecutor(None, BASE)
    team = executor.run_team(
        "diverge", [factory_for({0: 0, 1: 1})] * 2, 2)
    findings = barrier_findings(team)
    assert [f.kind for f in findings] == ["static-barrier-sequence-divergence"]


def test_barrier_pass_skips_truncated_threads():
    def short(tid: int, team: int) -> Iterator[Op]:
        yield BarrierWait(0)

    def endless(tid: int, team: int) -> Iterator[Op]:
        while True:
            yield Compute(1)

    config = StaticCheckConfig(max_ops_per_thread=50)
    executor = AbstractExecutor(config, BASE)
    team = executor.run_team("trunc", [short, endless], 2)
    assert team.truncated
    assert barrier_findings(team) == []


def test_empty_critical_section_lint():
    def factory(tid: int, team: int) -> Iterator[Op]:
        yield Lock(5)
        yield Unlock(5)

    team = _team(factory, 1)
    kinds = [f.kind for f in lint_findings(team, StaticCheckConfig())]
    assert kinds == ["static-empty-critical-section"]


def test_degenerate_compute_lint():
    team = _team(lambda tid, team: iter([Compute(0)]), 1)
    kinds = [f.kind for f in lint_findings(team, StaticCheckConfig())]
    assert "static-degenerate-compute" in kinds


def test_single_outcome_branch_lint_needs_observations():
    config = StaticCheckConfig(min_branch_observations=4)

    def taken_n(n: int):
        def factory(tid: int, team: int) -> Iterator[Op]:
            for _ in range(n):
                yield Branch(9, True)
        return factory

    below = _team(taken_n(3), 1, config=config)
    assert lint_findings(below, config) == []
    at = _team(taken_n(4), 1, config=config)
    assert [f.kind for f in lint_findings(at, config)] == [
        "static-single-outcome-branch"]


def test_both_outcome_branch_not_linted():
    def factory(tid: int, team: int) -> Iterator[Op]:
        for i in range(20):
            yield Branch(9, i % 2 == 0)

    team = _team(factory, 1)
    assert lint_findings(team, StaticCheckConfig()) == []


def test_lock_order_cycle_across_threads():
    def factory(tid: int, team: int) -> Iterator[Op]:
        first, second = (0, 1) if tid == 0 else (1, 0)
        yield Lock(first)
        yield Lock(second)
        yield Unlock(second)
        yield Unlock(first)

    team = _team(factory, 2)
    assert lock_fault_findings(team) == []
    findings = lock_order_findings(team)
    assert [f.kind for f in findings] == ["static-lock-order-cycle"]
    assert sorted(findings[0].details["locks"]) == [0, 1]


def test_profile_reports_cs_and_footprint():
    def factory(tid: int, team: int) -> Iterator[Op]:
        yield Load(0x1000 + tid * 0x40)
        yield Load(0x9000)  # shared by both threads
        yield Lock(0)
        yield Compute(10)
        yield Unlock(0)

    team = _team(factory, 2)
    profile = profile_team(team, BASE)
    assert profile["critical_sections"]["regions"] == 2
    assert profile["critical_sections"]["instructions"] == 20
    assert profile["footprint"]["lines"] == 3
    assert profile["footprint"]["shared_lines"] == 1
    assert profile["footprint"]["bytes"] == 3 * BASE.line_bytes
    json.dumps(profile)  # JSON-ready by construction


def test_team_priors_requires_team_of_one():
    team = _team(lambda tid, t: iter([Compute(4)]), 2)
    with pytest.raises(ValueError):
        team_priors(team, 1, BASE)


def test_derive_priors_square_root_law():
    # 1% critical section -> P_CS == round(sqrt(99)) == 10.
    priors = derive_priors("k", iterations=1, est_cycles=10_000,
                           est_cs_cycles=100, est_bus_busy=0,
                           instructions=20_000, footprint_lines=8,
                           config=BASE)
    assert priors.p_cs == 10
    assert priors.p_bw == BASE.num_thread_slots  # bus untouched
    assert priors.p_fdt == 10
    assert priors.footprint_bytes == 8 * BASE.line_bytes


# -- fixtures: the three seeded defects ------------------------------------

FIXTURE_CODES = {
    "static-deadlock": "static-lock-order-cycle",
    "static-barrier-mismatch": "static-barrier-count-mismatch",
    "static-counter-in-cs": "static-counter-in-cs",
}


@pytest.mark.parametrize("fixture,code", sorted(FIXTURE_CODES.items()))
def test_seeded_fixture_detected(fixture: str, code: str):
    report = analyze_workload(fixture, scale=1.0)
    assert not report.clean
    assert code in report.counts()
    assert all(f.analysis == STATIC for f in report.findings)


def test_fixture_codes_are_distinct():
    codes = {
        fixture: set(analyze_workload(fixture, scale=1.0).counts())
        for fixture in FIXTURE_CODES
    }
    for fixture, expected in FIXTURE_CODES.items():
        others = set().union(*(codes[o] for o in codes if o != fixture))
        assert expected in codes[fixture]
        assert expected not in others


def test_fixture_registry_lists_all_three():
    assert sorted(static_fixtures()) == sorted(FIXTURE_CODES)


# -- Table 2 workloads analyze clean ---------------------------------------

@pytest.mark.parametrize("name", [s.name for s in all_specs()])
@pytest.mark.parametrize("threads", [1, 4, 16])
def test_table2_workload_is_statically_clean(name: str, threads: int):
    report = analyze_workload(name, scale=0.1, thread_counts=(threads,))
    assert report.clean, (
        f"{name} at {threads} threads: {[f.message for f in report.findings]}")
    assert not report.truncated
    assert report.priors  # the team-of-one always runs


# -- priors vs measured -----------------------------------------------------

@pytest.mark.parametrize("name", ["EP", "PageMine"])
def test_static_prior_within_tolerance_of_measured(name: str):
    scale = 0.5
    report = analyze_workload(name, scale=scale)
    for kernel in get(name).build(scale).kernels:
        prior = report.priors[kernel.name]
        measured = measure_estimates(kernel)
        agreement = prior.agreement(measured)
        assert measured.cs_fraction > 0, "these workloads have a CS"
        assert agreement.cs_fraction_rel_error <= CS_FRACTION_RTOL, (
            f"{kernel.name}: static {prior.cs_fraction:.4f} vs "
            f"measured {measured.cs_fraction:.4f}")
        assert agreement.within_tolerance
        json.dumps(agreement.to_dict())


# -- analyzer plumbing ------------------------------------------------------

class _StatefulKernel(TeamParallelKernel):
    """Records how many times it was built (via the builder callable)."""

    name = "stateful"
    builds = 0

    def __init__(self) -> None:
        self._iterations = 1

    @property
    def total_iterations(self) -> int:
        return self._iterations

    def team_iteration(self, i: int, thread_id: int,
                       num_threads: int) -> Iterator[Op]:
        yield Compute(8)
        yield BarrierWait(0)


def _build_stateful() -> Application:
    _StatefulKernel.builds += 1
    return Application.single(_StatefulKernel())


def test_analyzer_builds_fresh_app_per_team_size():
    _StatefulKernel.builds = 0
    analyze_application(_build_stateful, thread_counts=(1, 2, 4))
    assert _StatefulKernel.builds == 3


def test_analyzer_always_includes_team_of_one():
    report = analyze_application(_build_stateful, thread_counts=(4,))
    assert "stateful" in report.priors
    assert report.thread_counts == (4,)


def test_analyzer_dedupes_across_team_sizes():
    report = analyze_workload("static-counter-in-cs", scale=1.0)
    # Two iterations x three team sizes, but one defect site: the
    # counter-in-CS findings collapse to one per (thread, op) witness.
    counter_findings = [f for f in report.findings
                       if f.kind == "static-counter-in-cs"]
    keys = {(f.details["thread"], f.details["index"])
            for f in counter_findings}
    assert len(counter_findings) == len(keys)


def test_analyzer_rejects_bad_team_sizes():
    with pytest.raises(WorkloadError):
        analyze_application(_build_stateful, thread_counts=())
    with pytest.raises(WorkloadError):
        analyze_application(_build_stateful, thread_counts=(0,))


def test_unknown_workload_error_lists_fixtures():
    with pytest.raises(WorkloadError, match="static-deadlock"):
        analyze_workload("no-such-workload")


def test_report_round_trips_to_json():
    report = analyze_workload("static-deadlock", scale=1.0)
    payload = json.loads(report.to_json())
    assert payload["workload"] == "static-deadlock"
    assert payload["clean"] is False
    assert payload["counts"]["static-lock-order-cycle"] >= 1
    assert payload["priors"]["static-deadlock"]["p_fdt"] >= 1


def test_as_check_report_feeds_shared_formatter():
    from repro.analysis.report import format_findings

    report = analyze_workload("static-barrier-mismatch", scale=1.0)
    text = format_findings(report.as_check_report())
    assert "static-barrier-count-mismatch" in text
    assert "FAIL" in text


def test_max_findings_cap_counts_dropped():
    def factory(tid: int, team: int) -> Iterator[Op]:
        for pc in range(50):
            for _ in range(20):
                yield Branch(pc, True)

    config = StaticCheckConfig(max_findings=5)
    report = analyze_application(
        lambda: Application.single(
            _FactoryKernel(factory), name="many-lints"),
        thread_counts=(1,), static=config)
    assert len(report.findings) == 5
    assert report.dropped > 0


class _FactoryKernel(TeamParallelKernel):
    """Wrap a raw factory for analyzer tests."""

    name = "factory-kernel"

    def __init__(self, factory) -> None:
        self._factory = factory

    @property
    def total_iterations(self) -> int:
        return 1

    def team_iteration(self, i: int, thread_id: int,
                       num_threads: int) -> Iterator[Op]:
        yield from self._factory(thread_id, num_threads)
