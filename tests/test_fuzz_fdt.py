"""Fuzz FDT end-to-end over random synthetic kernels (hypothesis).

Whatever the kernel's knobs, the full pipeline (training -> estimation
-> execution) must terminate, choose a legal team size, execute every
iteration exactly once, and never regress below single-threaded
performance by more than the training overhead.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fdt.policies import FdtMode, FdtPolicy
from repro.fdt.runner import Application, run_application
from repro.isa.ops import BarrierWait, Compute, Load, Lock, Unlock
from repro.fdt.kernel import TeamParallelKernel
from repro.runtime.parallel import static_chunks
from repro.sim.config import MachineConfig
from repro.workloads.base import LINE, AddressSpace

CFG = MachineConfig.small(num_cores=8)


class _FuzzKernel(TeamParallelKernel):
    """A Figure-1 kernel with arbitrary knobs and execution tracking."""

    name = "fuzz"

    def __init__(self, iterations, compute, cs, lines):
        self._iterations = iterations
        self._compute = compute
        self._cs = cs
        self._lines = lines
        space = AddressSpace()
        self._stream = space.alloc(max(1, lines) * LINE * iterations)
        self._shared = space.alloc(LINE)
        self.executed: set[tuple[int, int]] = set()

    @property
    def total_iterations(self):
        return self._iterations

    def team_iteration(self, i, tid, team):
        key = (i, tid)
        assert key not in self.executed, "iteration executed twice"
        self.executed.add(key)
        lines = static_chunks(self._lines, team)[tid]
        for k in lines:
            yield Load(self._stream + (i * self._lines + k) * LINE)
        instr = len(static_chunks(self._compute, team)[tid])
        if instr:
            yield Compute(instr)
        if self._cs:
            yield Lock(0)
            yield Compute(self._cs)
            yield Unlock(0)
        yield BarrierWait(0)


@given(
    iterations=st.integers(10, 40),
    compute=st.integers(0, 20_000),
    cs=st.integers(0, 2_000),
    lines=st.integers(0, 24),
    mode=st.sampled_from([FdtMode.SAT, FdtMode.BAT, FdtMode.COMBINED]),
)
@settings(max_examples=30, deadline=None)
def test_fdt_pipeline_is_total_and_correct(iterations, compute, cs, lines,
                                           mode):
    kernel = _FuzzKernel(iterations, compute, cs, lines)
    res = run_application(Application.single(kernel), FdtPolicy(mode), CFG)
    info = res.kernel_infos[0]

    # Legal decision.
    assert 1 <= info.threads <= CFG.num_thread_slots
    # Training happened and stayed within its cap.
    assert 1 <= info.trained_iterations <= iterations // 2 + 1
    # Every (iteration, thread) pair of the execution phase ran once,
    # and every iteration appears (training runs tid 0 only).
    iterations_seen = {i for i, _t in kernel.executed}
    assert iterations_seen == set(range(iterations))
    # Sane accounting.
    assert res.cycles == info.training_cycles + info.execution_cycles
    assert res.result.cycles > 0
    assert 0 < res.power <= CFG.num_cores
