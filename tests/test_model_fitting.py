"""Tests for the sweep-to-model fitting tools."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.bat_model import BatModel
from repro.models.fitting import classify_sweep, fit_bat, fit_sat, r_squared
from repro.models.sat_model import SatModel

GRID = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32)


def test_r_squared_perfect_fit():
    assert r_squared([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)


def test_r_squared_mean_prediction_is_zero():
    assert r_squared([1.0, 2.0, 3.0], [2.0, 2.0, 2.0]) == pytest.approx(0.0)


def test_r_squared_validates_inputs():
    with pytest.raises(ValueError):
        r_squared([1.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        r_squared([], [])


def test_fit_sat_recovers_exact_parameters():
    truth = SatModel(t_nocs=1000.0, t_cs=12.0)
    times = [truth.execution_time(p) for p in GRID]
    fit = fit_sat(GRID, times)
    assert fit.model.t_nocs == pytest.approx(1000.0, rel=1e-9)
    assert fit.model.t_cs == pytest.approx(12.0, rel=1e-9)
    assert fit.r2 == pytest.approx(1.0)


@given(t_nocs=st.floats(10.0, 1e6), t_cs=st.floats(0.01, 1e4))
@settings(max_examples=80)
def test_fit_sat_roundtrip_property(t_nocs, t_cs):
    truth = SatModel(t_nocs=t_nocs, t_cs=t_cs)
    times = [truth.execution_time(p) for p in GRID]
    fit = fit_sat(GRID, times)
    assert fit.r2 > 0.999999
    assert fit.implied_optimum == pytest.approx(truth.optimal_threads(),
                                                rel=1e-4)


def test_fit_sat_clamps_negative_cs():
    # A perfectly scaling curve fits T_CS = 0 (never negative).
    times = [100.0 / p for p in GRID]
    fit = fit_sat(GRID, times)
    assert fit.model.t_cs >= 0.0
    assert fit.r2 > 0.999


def test_fit_sat_validates_inputs():
    with pytest.raises(ValueError):
        fit_sat((1,), (1.0,))
    with pytest.raises(ValueError):
        fit_sat((2, 2), (1.0, 1.0))


def test_fit_bat_recovers_knee():
    truth = BatModel(t1=1000.0, bu1=0.125)  # knee at 8
    times = [truth.execution_time(p) for p in GRID]
    fit = fit_bat(GRID, times)
    assert fit.implied_knee == pytest.approx(8.0, abs=0.3)
    assert fit.r2 > 0.9999


@given(knee=st.floats(2.0, 24.0))
@settings(max_examples=60)
def test_fit_bat_roundtrip_property(knee):
    truth = BatModel(t1=500.0, bu1=1.0 / knee)
    times = [truth.execution_time(p) for p in GRID]
    fit = fit_bat(GRID, times)
    assert fit.implied_knee == pytest.approx(knee, abs=0.3)


def test_classify_synthetic_curves():
    cs = SatModel(t_nocs=1000.0, t_cs=30.0)  # optimum ~5.8
    bw = BatModel(t1=1000.0, bu1=0.125)      # knee 8
    scalable = [1000.0 / p for p in GRID]
    assert classify_sweep(GRID, [cs.execution_time(p) for p in GRID]) == \
        "cs-limited"
    assert classify_sweep(GRID, [bw.execution_time(p) for p in GRID]) == \
        "bw-limited"
    assert classify_sweep(GRID, scalable) == "scalable"


def test_fit_against_simulated_pagemine_sweep():
    """The simulator's Figure 2 curve follows Eq. 1 (R² > 0.9)."""
    from repro.analysis.sweep import sweep_threads
    from repro.sim.config import MachineConfig
    from repro.workloads import get
    sweep = sweep_threads(lambda: get("PageMine").build(0.15),
                          (1, 2, 4, 6, 8, 12, 16, 32),
                          MachineConfig.asplos08_baseline())
    times = [float(p.cycles) for p in sweep.points]
    fit = fit_sat(sweep.thread_counts, times)
    assert fit.r2 > 0.9
    assert 3 <= fit.implied_optimum <= 8
    assert classify_sweep(sweep.thread_counts, times) == "cs-limited"


def test_fit_against_simulated_ed_sweep():
    """The simulator's Figure 4 curve follows Eq. 6 (R² > 0.95)."""
    from repro.analysis.sweep import sweep_threads
    from repro.sim.config import MachineConfig
    from repro.workloads import get
    sweep = sweep_threads(lambda: get("ED").build(0.1),
                          (1, 2, 4, 6, 8, 12, 16, 32),
                          MachineConfig.asplos08_baseline())
    times = [float(p.cycles) for p in sweep.points]
    fit = fit_bat(sweep.thread_counts, times)
    assert fit.r2 > 0.95
    # The least-squares knee sits a little under the utilization knee
    # (queueing rounds the corner): accept the band around 8.
    assert 6 <= fit.implied_knee <= 11
    assert classify_sweep(sweep.thread_counts, times) == "bw-limited"
