"""Chaos-harness tests: recovery paths under injected faults.

The determinism suite locks in the contract the nightly soak relies
on — same plan + same seed reproduces identical firings, cache state,
and manifest counts — and the recovery tests drive each hardened path
(backoff retry, quarantine-and-recompute, tolerated cache writes, the
serve retry loop) through the real JobRunner / ServerThread code.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import JobError
from repro.faults import FaultPlan, FaultRule, injected
from repro.faults.chaos import (
    example_plan,
    run_chaos_batch,
    run_chaos_serve,
)
from repro.jobs import JobRunner, JobSpec, PolicySpec, ResultCache, WorkloadRef
from repro.sim.config import MachineConfig

EXAMPLES = Path(__file__).parent.parent / "examples"


def _spec(iterations: int = 8, threads: int = 2,
          config: MachineConfig | None = None) -> JobSpec:
    return JobSpec(
        workload=WorkloadRef.synthetic(cs_fraction=0.2, bus_lines=2,
                                       iterations=iterations,
                                       compute_instr=200),
        policy=PolicySpec.static(threads),
        config=config or MachineConfig.small())


def _serve_spec(iterations: int = 8) -> JobSpec:
    # The serve request schema rebuilds machines from the Table 1
    # baseline, so serve-mode specs must use it (see _request_body).
    return _spec(iterations, config=MachineConfig.asplos08_baseline())


# -- hardened recovery paths ------------------------------------------

def test_runner_retries_transient_crash_with_backoff(tmp_path):
    plan = FaultPlan(rules=(
        FaultRule(site="executor.job", kind="crash", max_fires=1),))
    runner = JobRunner(cache=ResultCache(tmp_path / "c"),
                       backoff_base=0.001)
    with injected(plan) as injector:
        (resolution,) = runner.resolve([_spec()])
        assert injector.firing_count() == 1
    assert resolution.status == "computed"
    assert resolution.result is not None


def test_runner_gives_up_after_the_retry_budget(tmp_path):
    plan = FaultPlan(rules=(
        FaultRule(site="executor.job", kind="crash"),))  # every attempt
    runner = JobRunner(cache=ResultCache(tmp_path / "c"),
                       backoff_base=0.001, retry_budget=2)
    with injected(plan) as injector:
        (resolution,) = runner.resolve([_spec()])
        # Initial attempt plus the whole retry budget, then surrender.
        assert injector.firing_count() == 3
    assert resolution.status == "failed"
    assert "injected crash" in resolution.error


def test_runner_run_raises_but_never_crashes_on_exhausted_budget(tmp_path):
    plan = FaultPlan(rules=(
        FaultRule(site="executor.job", kind="crash"),))
    runner = JobRunner(cache=ResultCache(tmp_path / "c"),
                       backoff_base=0.001, retry_budget=0)
    with injected(plan):
        with pytest.raises(JobError):
            runner.run([_spec()])


def test_deterministic_sim_failures_are_never_retried(tmp_path, monkeypatch):
    # A ReproError from the simulation fails identically every time;
    # burning the retry budget on it would only slow the batch down.
    from repro.errors import ReproError
    from repro.jobs import executor

    calls = {"n": 0}

    def deterministic_failure(spec_dict, trace_dir):
        calls["n"] += 1
        raise ReproError("deadlock: provably stuck")

    monkeypatch.setattr(executor, "_run_payload", deterministic_failure)
    runner = JobRunner(cache=ResultCache(tmp_path / "c"),
                       backoff_base=0.001, retry_budget=3)
    (resolution,) = runner.resolve([_spec()])
    assert resolution.status == "failed"
    assert calls["n"] == 1  # no retries


def test_corrupt_cache_entry_is_quarantined_and_recomputed(tmp_path):
    cache = ResultCache(tmp_path / "c")
    spec = _spec()
    baseline = JobRunner(cache=cache).resolve([spec])[0]
    assert baseline.status == "computed"
    assert len(cache) == 1

    plan = FaultPlan(rules=(
        FaultRule(site="cache.read", kind="corrupt", max_fires=1),))
    with injected(plan):
        (resolution,) = JobRunner(cache=cache).resolve([spec])
    # Served a recomputed result, never the corrupt bytes.
    assert resolution.status == "computed"
    assert resolution.result == baseline.result
    # The bad entry left the lookup tree into quarantine, and the
    # recomputed result took its place.
    assert cache.quarantined_count() == 1
    assert len(cache) == 1
    assert cache.get_or_none(spec.key()) == baseline.result


def test_quarantined_entries_are_never_rereadable(tmp_path):
    cache = ResultCache(tmp_path / "c")
    spec = _spec()
    JobRunner(cache=cache).resolve([spec])
    path = cache.path_for(spec.key())
    path.write_text("{ definitely not json", encoding="utf-8")
    assert cache.get(spec.key()) is None
    assert not path.exists()
    assert cache.quarantined_count() == 1
    # Even a repeat offender under the same name is kept distinctly.
    JobRunner(cache=cache).resolve([spec])
    path.write_text("{ corrupt again", encoding="utf-8")
    assert cache.get(spec.key()) is None
    assert cache.quarantined_count() == 2


def test_unwritable_cache_degrades_to_memory_only(tmp_path):
    plan = FaultPlan(rules=(
        FaultRule(site="cache.write", kind="io-error"),))
    cache = ResultCache(tmp_path / "c")
    runner = JobRunner(cache=cache)
    with injected(plan):
        (resolution,) = runner.resolve([_spec()])
        assert resolution.status == "computed"
        # Memoized in-process even though the disk write failed.
        (again,) = runner.resolve([_spec()])
        assert again.status == "hit"
    assert len(cache) == 0


# -- the chaos harness ------------------------------------------------

def test_chaos_batch_passes_with_the_example_plan():
    report = run_chaos_batch(example_plan(), [_spec(), _spec(12)])
    assert report.passed, report.summary()
    assert report.statuses == {"computed": 2}
    assert report.injected > 0
    assert set(report.observed_cycles) == set(report.baseline_cycles)
    payload = report.to_dict()
    assert payload["schema"] == "repro-chaos/1"
    assert payload["passed"] is True
    json.dumps(payload)  # report is JSON-serializable


def test_chaos_batch_is_deterministic_per_plan_and_seed():
    specs = [_spec(), _spec(12)]
    first = run_chaos_batch(example_plan(), specs)
    second = run_chaos_batch(example_plan(), specs)
    assert first.firings == second.firings
    assert first.statuses == second.statuses
    assert first.manifest_counts == second.manifest_counts
    assert first.observed_cycles == second.observed_cycles
    assert (first.cache_entries, first.quarantined) == \
        (second.cache_entries, second.quarantined)
    # A different seed may fire differently, but invariants still hold.
    reseeded = run_chaos_batch(example_plan(seed=999), specs)
    assert reseeded.passed, reseeded.summary()


def test_chaos_batch_reports_violations_without_raising(monkeypatch):
    # Sabotage the accounting on purpose: a lost spec must be reported
    # as a violation, not an exception.
    from repro.faults import chaos as chaos_mod

    class _LossyRunner(JobRunner):
        def resolve(self, specs):
            return super().resolve(specs)[:-1]  # drop one answer

    monkeypatch.setattr(chaos_mod, "JobRunner", _LossyRunner)
    report = run_chaos_batch(FaultPlan(), [_spec(), _spec(12)])
    assert not report.passed
    assert [v.name for v in report.violations()] == \
        ["every-spec-accounted-once"]


def test_chaos_serve_survives_drops_timeouts_and_slow_reads():
    plan = FaultPlan(seed=7, rules=(
        FaultRule(site="serve.connection", kind="drop", max_fires=2),
        FaultRule(site="serve.read", kind="slow", latency=0.02,
                  max_fires=2),
        FaultRule(site="serve.batch_timeout", kind="force", max_fires=1),
        FaultRule(site="cache.write", kind="io-error", max_fires=1),
    ))
    report = run_chaos_serve(plan, [_serve_spec(), _serve_spec(12)])
    assert report.passed, report.summary()
    assert report.injected > 0
    assert set(report.observed_cycles) == set(report.baseline_cycles)
    names = [inv.name for inv in report.invariants]
    assert "server-stays-responsive" in names


def test_serve_chaos_refuses_inexpressible_machine_configs():
    from repro.errors import FaultError

    with pytest.raises(FaultError, match="machine config"):
        run_chaos_serve(FaultPlan(), [_spec()])  # small() caches differ


# -- the example plan artifact ----------------------------------------

def test_example_plan_file_matches_the_builtin():
    on_disk = FaultPlan.load(EXAMPLES / "chaos_plan.json")
    assert on_disk == example_plan()


def test_chaos_walkthrough_example_runs(capsys):
    import importlib.util
    import sys

    path = EXAMPLES / "chaos_walkthrough.py"
    spec = importlib.util.spec_from_file_location("example_chaos", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    sys.modules["example_chaos"] = module
    spec.loader.exec_module(module)
    module.main()
    out = capsys.readouterr().out
    assert "chaos batch: PASS" in out
    assert "re-run with the same seed fires identically: True" in out


# -- the chaos CLI ----------------------------------------------------

def test_cli_chaos_list_sites(capsys):
    from repro.cli import main

    assert main(["chaos", "--list-sites"]) == 0
    out = capsys.readouterr().out
    assert "cache.read" in out and "serve.batch_timeout" in out


def test_cli_chaos_batch_json_report(tmp_path, capsys):
    from repro.cli import main

    report_path = tmp_path / "chaos.json"
    code = main(["chaos", "--mode", "batch", "--workloads", "PageMine",
                 "--scale", "0.05", "--json",
                 "--report", str(report_path)])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["passed"] is True
    assert payload["reports"][0]["mode"] == "batch"
    assert json.loads(report_path.read_text()) == payload
