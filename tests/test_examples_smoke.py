"""Smoke tests for the runnable examples (the fast ones).

Each example is a script with a ``main()``; importing and running it
must succeed and print its headline output.  The slower, full-scale
examples (per_kernel_power, input_set_adaptation, machine_adaptation,
extensions_and_inspection) are exercised by the benchmarks they mirror.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    sys.modules[f"example_{name}"] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_complete():
    names = {p.stem for p in EXAMPLES.glob("*.py")}
    assert {"quickstart", "input_set_adaptation", "machine_adaptation",
            "custom_workload", "per_kernel_power",
            "extensions_and_inspection", "dynamic_scheduling",
            "sanitize_workload", "serve_client"} <= names


def test_quickstart_runs(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "FDT training" in out
    assert "speedup vs conventional" in out


def test_custom_workload_runs(capsys):
    load_example("custom_workload").main()
    out = capsys.readouterr().out
    assert "custom SpMV kernel under FDT" in out
    assert "P_CS" in out


def test_dynamic_scheduling_runs(capsys):
    load_example("dynamic_scheduling").main()
    out = capsys.readouterr().out
    assert "static chunks" in out
    assert "dynamic, chunk  1" in out


def test_sanitize_workload_runs(capsys):
    load_example("sanitize_workload").main()
    out = capsys.readouterr().out
    assert "locked histogram: clean=True" in out
    assert "the sanitizer caught the dropped lock" in out


def test_serve_client_runs(capsys):
    load_example("serve_client").main()
    out = capsys.readouterr().out
    assert "FDT decision for PageMine" in out
    assert "served from cache, no simulation" in out
    assert "repro_serve_cache_hits_total 1" in out


@pytest.mark.parametrize("name", ["per_kernel_power", "machine_adaptation",
                                  "input_set_adaptation",
                                  "extensions_and_inspection"])
def test_slow_examples_are_importable(name):
    """The slow examples must at least import cleanly (their main() is
    covered by the equivalent benchmarks)."""
    module = load_example(name)
    assert callable(module.main)
