"""Edge-case tests for individual workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fdt.policies import StaticPolicy
from repro.fdt.runner import Application, run_application
from repro.isa.ops import Load, Store
from repro.sim.config import MachineConfig
from repro.workloads.bscholes import BScholesKernel, BScholesParams
from repro.workloads.convert import ConvertKernel, ConvertParams
from repro.workloads.ed import EdKernel, EdParams
from repro.workloads.isort import ISortKernel, ISortParams
from repro.workloads.pagemine import PageMineKernel, PageMineParams
from repro.workloads.transpose import TransposeKernel, TransposeParams

SMALL = MachineConfig.small()


# -- PageMine: team sizes that do not divide the page ----------------------------

@pytest.mark.parametrize("team", [1, 3, 5, 7])
def test_pagemine_histogram_correct_for_awkward_teams(team):
    kernel = PageMineKernel(PageMineParams(num_pages=4, page_bytes=1000))
    run_application(Application.single(kernel), StaticPolicy(team), SMALL)
    np.testing.assert_array_equal(kernel.global_histogram,
                                  kernel.expected_histogram())


def test_pagemine_page_smaller_than_team():
    # 2 lines of page, 8 threads: most threads scan nothing but all merge.
    kernel = PageMineKernel(PageMineParams(num_pages=2, page_bytes=128))
    run_application(Application.single(kernel), StaticPolicy(8), SMALL)
    np.testing.assert_array_equal(kernel.global_histogram,
                                  kernel.expected_histogram())


def test_pagemine_different_seeds_differ():
    a = PageMineKernel(PageMineParams(num_pages=2, seed=1))
    b = PageMineKernel(PageMineParams(num_pages=2, seed=2))
    assert not np.array_equal(a.corpus, b.corpus)


# -- ED: tail block not covering full lines ------------------------------------------

def test_ed_partial_tail_still_correct():
    # 4097 elements: the last block is partial.
    kernel = EdKernel(EdParams(n_elements=4097))
    for i in range(kernel.total_iterations):
        for _op in kernel.serial_iteration(i):
            pass
    # The blocked loop covers whole blocks only; verify against the
    # same coverage (the kernel's contract is block-granular).
    covered = kernel.total_iterations * 64 * 8
    expect = float(np.sqrt(np.square(kernel.values[:covered]).sum()))
    assert kernel.distance() == pytest.approx(expect)


# -- ISort: uneven tiles ---------------------------------------------------------------

def test_isort_uneven_tile_split_covers_all_keys():
    params = ISortParams(num_keys=1000, num_passes=1, tiles_per_pass=7)
    kernel = ISortKernel(params)
    for i in range(kernel.total_iterations):
        for _op in kernel.serial_iteration(i):
            pass
    assert int(kernel.global_buckets.sum()) == 1000


# -- convert: odd heights and widths ------------------------------------------------------

def test_convert_odd_height():
    kernel = ConvertKernel(ConvertParams(height=5))
    for i in range(kernel.total_iterations):
        for _op in kernel.serial_iteration(i):
            pass
    np.testing.assert_array_equal(kernel.output, kernel.expected_output())


def test_convert_segments_partition_each_row():
    kernel = ConvertKernel(ConvertParams(height=2))
    addrs = []
    for i in range(kernel.total_iterations):
        addrs.extend(op.addr for op in kernel.serial_iteration(i)
                     if isinstance(op, Load))
    assert len(addrs) == len(set(addrs))
    assert len(addrs) == 2 * 20  # 2 rows x 20 lines


# -- Transpose: tall vs wide ---------------------------------------------------------------

@pytest.mark.parametrize("rows,cols", [(16, 128), (128, 16), (48, 48)])
def test_transpose_various_shapes(rows, cols):
    kernel = TransposeKernel(TransposeParams(rows=rows, cols=cols))
    for t in range(kernel.total_iterations):
        for _op in kernel.serial_iteration(t):
            pass
    np.testing.assert_array_equal(kernel.result, kernel.expected_result())


# -- BScholes: block boundary --------------------------------------------------------------------

def test_bscholes_prices_whole_range_in_blocks():
    kernel = BScholesKernel(BScholesParams(num_options=64))
    for i in range(kernel.total_iterations):
        for _op in kernel.serial_iteration(i):
            pass
    # Every option was priced: at least one side of each put/call pair
    # has value (deep out-of-the-money calls can price to ~0).
    assert np.all((np.abs(kernel.call) > 1e-12)
                  | (np.abs(kernel.put) > 1e-12))


def test_bscholes_stores_touch_output_arrays_only():
    kernel = BScholesKernel(BScholesParams(num_options=64))
    ops = list(kernel.serial_iteration(0))
    stores = {op.addr for op in ops if isinstance(op, Store)}
    out_lo = kernel._out_bases[0]
    assert all(a >= out_lo for a in stores)
