"""Unit tests for the bi-directional ring interconnect."""

from __future__ import annotations

import pytest

from repro.sim.ring import Ring


def test_zero_hops_to_self():
    r = Ring(8)
    assert r.hops(3, 3) == 0


def test_adjacent_nodes_one_hop():
    r = Ring(8)
    assert r.hops(0, 1) == 1
    assert r.hops(7, 0) == 1  # wraps around


def test_shortest_direction_chosen():
    r = Ring(8)
    assert r.hops(0, 6) == 2  # counter-clockwise beats 6 clockwise hops
    assert r.hops(0, 4) == 4  # diametrically opposite


def test_hops_symmetric():
    r = Ring(10)
    for a in range(10):
        for b in range(10):
            assert r.hops(a, b) == r.hops(b, a)


def test_max_hops_is_half_ring():
    r = Ring(12)
    assert max(r.hops(0, d) for d in range(12)) == 6


def test_latency_scales_with_hop_latency():
    r = Ring(8, hop_latency=3)
    assert r.latency(0, 2) == 6


def test_latency_records_traffic():
    r = Ring(8)
    r.latency(0, 4)
    r.latency(1, 2)
    assert r.stats.messages == 2
    assert r.stats.total_hops == 5
    assert r.stats.mean_hops == pytest.approx(2.5)


def test_round_trip_counts_two_messages():
    r = Ring(8)
    total = r.round_trip(0, 3)
    assert total == 6
    assert r.stats.messages == 2


def test_out_of_range_node_rejected():
    r = Ring(4)
    with pytest.raises(ValueError):
        r.hops(0, 4)
    with pytest.raises(ValueError):
        r.hops(-1, 0)


def test_single_node_ring():
    r = Ring(1)
    assert r.hops(0, 0) == 0


def test_invalid_construction():
    with pytest.raises(ValueError):
        Ring(0)
    with pytest.raises(ValueError):
        Ring(4, hop_latency=-1)


# -- link-bandwidth modeling (ring_link_occupancy > 0) ------------------------

def test_latency_at_matches_latency_when_unconstrained():
    r = Ring(8)
    assert r.latency_at(100, 0, 3) == 100 + r.hops(0, 3)


def test_latency_at_zero_hops():
    r = Ring(8, link_occupancy=4)
    assert r.latency_at(50, 2, 2) == 50


def test_narrow_ring_serializes_messages_on_shared_links():
    r = Ring(8, link_occupancy=16)
    t1 = r.latency_at(0, 0, 2)
    t2 = r.latency_at(0, 0, 2)  # same path, same instant
    assert t2 > t1
    assert r.stats.link_wait_cycles > 0


def test_narrow_ring_opposite_directions_do_not_contend():
    r = Ring(8, link_occupancy=16)
    t_cw = r.latency_at(0, 1, 2)   # uses link 1->2 clockwise
    t_ccw = r.latency_at(0, 2, 1)  # uses link 2->1 counter-clockwise
    assert t_cw == 1 and t_ccw == 1  # one hop each, no waiting
    assert r.stats.link_wait_cycles == 0


def test_narrow_ring_disjoint_paths_do_not_contend():
    r = Ring(16, link_occupancy=16)
    t1 = r.latency_at(0, 0, 2)
    t2 = r.latency_at(0, 8, 10)
    assert t1 == t2 == 2
    assert r.stats.link_wait_cycles == 0


def test_link_occupancy_validated():
    with pytest.raises(ValueError):
        Ring(8, link_occupancy=-1)
