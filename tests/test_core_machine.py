"""Unit tests for the core model and the assembled machine."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, DeadlockError
from repro.isa.ops import (
    BarrierWait,
    Branch,
    Compute,
    CounterKind,
    Load,
    Lock,
    ReadCounter,
    Store,
    Unlock,
)
from repro.sim.machine import Machine, _place_nodes


def run_one(machine: Machine, ops):
    def factory(tid, team):
        yield from ops
    return machine.run_serial(factory)


def test_compute_retires_two_per_cycle(small_machine: Machine):
    region = run_one(small_machine, [Compute(100)])
    assert region.cycles == 50


def test_odd_instruction_count_rounds_up(small_machine: Machine):
    region = run_one(small_machine, [Compute(101)])
    assert region.cycles == 51


def test_zero_instruction_compute_is_free(small_machine: Machine):
    region = run_one(small_machine, [Compute(0), Compute(10)])
    assert region.cycles == 5


def test_load_blocks_until_memory_returns(small_machine: Machine):
    region = run_one(small_machine, [Load(1 << 20)])
    assert region.cycles > 100  # cold DRAM miss


def test_retired_instructions_counted(small_machine: Machine):
    run_one(small_machine, [Compute(10), Load(1 << 20), Store(1 << 21)])
    assert small_machine.cores[0].retired_instructions == 12


def test_correct_branch_costs_one_cycle(small_machine: Machine):
    # Train the predictor, then measure a predicted branch.
    ops = [Branch(pc=0x40, taken=True) for _ in range(50)]
    region = run_one(small_machine, ops)
    penalty = small_machine.config.branch_misprediction_penalty
    # Near-perfect prediction: cost close to 1 cycle per branch.
    assert region.cycles < 50 + 4 * penalty


def test_mispredicted_branches_cost_flush(small_machine: Machine):
    # Deterministically random outcomes defeat the predictor often.
    import random
    rng = random.Random(7)
    ops = [Branch(pc=0x40, taken=rng.random() < 0.5) for _ in range(200)]
    region = run_one(small_machine, ops)
    assert region.cycles > 200 + 50  # many flushes

def test_read_counter_returns_value_into_program(small_machine: Machine):
    seen = []

    def factory(tid, team):
        yield Compute(20)
        t = yield ReadCounter(CounterKind.CYCLES)
        seen.append(t)

    small_machine.run_serial(factory)
    assert seen and seen[0] >= 10


def test_lock_serializes_critical_sections(machine: Machine):
    order = []

    def factory(tid, team):
        yield Lock(0)
        order.append(("enter", tid))
        yield Compute(1000)
        order.append(("exit", tid))
        yield Unlock(0)

    machine.run_parallel([factory] * 4)
    # Critical sections must not interleave.
    for i in range(0, len(order), 2):
        assert order[i][0] == "enter"
        assert order[i + 1][0] == "exit"
        assert order[i][1] == order[i + 1][1]


def test_barrier_synchronizes_team(machine: Machine):
    phases = []

    def factory(tid, team):
        yield Compute(100 * (tid + 1))
        phases.append(("before", tid))
        yield BarrierWait(0)
        phases.append(("after", tid))

    machine.run_parallel([factory] * 4)
    before = [i for i, p in enumerate(phases) if p[0] == "before"]
    after = [i for i, p in enumerate(phases) if p[0] == "after"]
    assert max(before) < min(after)


def test_deadlock_detected_when_lock_never_released(machine: Machine):
    def holder(tid, team):
        yield Lock(0)
        # never unlocks, never finishes the other thread's acquire

    def waiter(tid, team):
        yield Compute(100)
        yield Lock(0)
        yield Unlock(0)

    with pytest.raises(DeadlockError):
        machine.run_parallel([holder, waiter])


def test_deadlock_detected_on_partial_barrier(machine: Machine):
    def arriver(tid, team):
        if tid == 0:
            yield BarrierWait(0)
        else:
            yield Compute(10)

    with pytest.raises(DeadlockError):
        machine.run_parallel([arriver, arriver])


def test_too_many_threads_rejected(small_machine: Machine):
    cores = small_machine.config.num_cores

    def factory(tid, team):
        yield Compute(2)

    with pytest.raises(ConfigError):
        small_machine.run_parallel([factory] * (cores + 1))


def test_empty_team_rejected(small_machine: Machine):
    with pytest.raises(ConfigError):
        small_machine.run_parallel([])


def test_spawn_overhead_charged_to_workers(machine: Machine):
    starts = {}

    def factory(tid, team):
        t = yield ReadCounter(CounterKind.CYCLES)
        starts[tid] = t

    machine.run_parallel([factory] * 2)
    spawn = machine.config.thread_spawn_cycles
    assert starts[1] - starts[0] >= spawn - 2


def test_serial_region_skips_spawn_overhead(machine: Machine):
    region = machine.run_serial(lambda tid, team: iter([Compute(2)]))
    assert region.cycles == 1


def test_time_persists_across_regions(small_machine: Machine):
    r1 = run_one(small_machine, [Compute(100)])
    r2 = run_one(small_machine, [Compute(100)])
    assert r2.start_cycle >= r1.end_cycle


def test_caches_stay_warm_across_regions(small_machine: Machine):
    run_one(small_machine, [Load(1 << 20)])
    misses_before = small_machine.memsys.l3.misses
    run_one(small_machine, [Load(1 << 20)])
    assert small_machine.memsys.l3.misses == misses_before


def test_power_counts_active_cores_only(machine: Machine):
    def factory(tid, team):
        yield Compute(100_000)

    before = machine.snapshot()
    machine.run_parallel([factory] * 8, spawn_overhead=False)
    result = machine.result_since(before)
    assert result.power == pytest.approx(8.0, rel=0.01)


def test_spinning_cores_count_as_active(machine: Machine):
    def factory(tid, team):
        yield Lock(0)
        yield Compute(50_000)
        yield Unlock(0)

    before = machine.snapshot()
    machine.run_parallel([factory] * 8, spawn_overhead=False)
    result = machine.result_since(before)
    # All 8 cores are active (one working, seven spinning) nearly all run.
    assert result.power > 7.0
    assert result.spin_core_cycles > 0


def test_node_placement_is_disjoint_and_complete():
    cores, banks = _place_nodes(32, 8)
    assert len(cores) == 32 and len(banks) == 8
    assert set(cores) | set(banks) == set(range(40))
    assert not set(cores) & set(banks)


def test_node_placement_spreads_banks():
    _cores, banks = _place_nodes(32, 8)
    gaps = [b - a for a, b in zip(banks, banks[1:])]
    assert max(gaps) <= 6  # roughly every 5 slots
