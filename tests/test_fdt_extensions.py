"""Unit tests for the §9 future-work extensions."""

from __future__ import annotations

import math

import pytest

from repro.errors import TrainingError
from repro.fdt.extensions import (
    CalibratedBatPolicy,
    SubLinearBandwidthModel,
    TwoPhaseSatPolicy,
)
from repro.fdt.policies import FdtMode, FdtPolicy
from repro.fdt.runner import run_application
from repro.sim.config import MachineConfig
from repro.workloads import get

CFG = MachineConfig.asplos08_baseline()


# -- the sub-linear model ------------------------------------------------------

def test_zero_beta_recovers_linear_model():
    m = SubLinearBandwidthModel(bu1=0.125, beta=0.0)
    assert m.utilization(4) == pytest.approx(0.5)
    assert m.saturation_threads() == pytest.approx(8.0)
    assert m.predicted_thread_count(32) == 8


def test_positive_beta_pushes_saturation_out():
    linear = SubLinearBandwidthModel(bu1=0.125, beta=0.0)
    damped = SubLinearBandwidthModel(bu1=0.125, beta=0.02)
    assert damped.saturation_threads() > linear.saturation_threads()
    for p in (2, 4, 8, 16):
        assert damped.utilization(p) <= linear.utilization(p)


def test_strong_damping_never_saturates():
    m = SubLinearBandwidthModel(bu1=0.05, beta=0.06)
    assert m.saturation_threads() == math.inf
    assert m.predicted_thread_count(32) == 32


def test_fit_from_exact_linear_probe_gives_zero_beta():
    m = SubLinearBandwidthModel.fit(bu1=0.1, probe_threads=4,
                                    probe_utilization=0.4)
    assert m.beta == pytest.approx(0.0)


def test_fit_from_sublinear_probe_recovers_beta():
    truth = SubLinearBandwidthModel(bu1=0.1, beta=0.03)
    fitted = SubLinearBandwidthModel.fit(
        bu1=0.1, probe_threads=4, probe_utilization=truth.utilization(4))
    assert fitted.beta == pytest.approx(0.03, abs=1e-9)
    assert fitted.saturation_threads() == pytest.approx(
        truth.saturation_threads())


def test_fit_clamps_superlinear_probe():
    m = SubLinearBandwidthModel.fit(bu1=0.1, probe_threads=4,
                                    probe_utilization=0.5)
    assert m.beta == 0.0


def test_fit_validates_probe():
    with pytest.raises(TrainingError):
        SubLinearBandwidthModel.fit(0.1, probe_threads=1,
                                    probe_utilization=0.1)


def test_model_utilization_capped():
    m = SubLinearBandwidthModel(bu1=0.5, beta=0.0)
    assert m.utilization(10) == 1.0


# -- policies end-to-end ----------------------------------------------------------

def test_calibrated_bat_matches_or_beats_plain_bat_on_ed():
    plain = run_application(get("ED").build(0.15),
                            FdtPolicy(FdtMode.BAT), CFG)
    calibrated = run_application(get("ED").build(0.15),
                                 CalibratedBatPolicy(probe_threads=4), CFG)
    t_plain = plain.kernel_infos[0].threads
    t_cal = calibrated.kernel_infos[0].threads
    # The sub-linear correction never picks fewer threads than linear
    # BAT, and lands at or near the true knee (8).
    assert t_cal >= t_plain
    assert 7 <= t_cal <= 10
    # Execution time no worse than plain BAT's (modulo probe cost).
    assert calibrated.cycles <= plain.cycles * 1.10


def test_calibrated_bat_keeps_scalable_apps_wide():
    res = run_application(get("BScholes").build(0.25),
                          CalibratedBatPolicy(probe_threads=4), CFG)
    assert res.kernel_infos[0].threads == 32


def test_calibrated_bat_rejects_bad_probe():
    with pytest.raises(ValueError):
        CalibratedBatPolicy(probe_threads=1)


def test_two_phase_sat_near_best_for_pagemine():
    from repro.analysis.sweep import sweep_threads
    sweep = sweep_threads(lambda: get("PageMine").build(0.25),
                          (1, 2, 3, 4, 5, 6, 8, 12, 32), CFG)
    res = run_application(get("PageMine").build(0.25),
                          TwoPhaseSatPolicy(), CFG)
    info = res.kernel_infos[0]
    assert 2 <= info.threads <= 8
    assert res.cycles <= sweep.min_cycles * 1.35


def test_two_phase_sat_never_exceeds_first_guess():
    """The contended re-fit can only see a *larger* CS time, so the
    refined count never exceeds plain SAT's pick."""
    plain = run_application(get("ISort").build(0.5),
                            FdtPolicy(FdtMode.SAT), CFG)
    refined = run_application(get("ISort").build(0.5),
                              TwoPhaseSatPolicy(), CFG)
    assert (refined.kernel_infos[0].threads
            <= plain.kernel_infos[0].threads)


def test_extension_policies_report_training_metadata():
    res = run_application(get("EP").build(0.5), TwoPhaseSatPolicy(), CFG)
    info = res.kernel_infos[0]
    assert info.trained_iterations > 0
    assert info.training_cycles > 0
    assert info.estimates is not None
    assert info.policy_name == "sat-two-phase"
