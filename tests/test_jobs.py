"""Unit tests for the job-spec, serialization, and cache layers."""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import JobError
from repro.fdt.estimators import Estimates
from repro.fdt.policies import StaticPolicy
from repro.fdt.runner import run_application
from repro.jobs import (
    SCHEMA_VERSION,
    JobSpec,
    PolicySpec,
    ResultCache,
    WorkloadRef,
    app_result_from_dict,
    app_result_to_dict,
    config_from_dict,
    config_to_dict,
    default_cache_dir,
)
from repro.jobs.results import estimates_from_dict, estimates_to_dict
from repro.sim.config import MachineConfig, SanitizerConfig
from repro.workloads import get


def ep_spec(threads: int = 2, scale: float = 0.1,
            config: MachineConfig | None = None) -> JobSpec:
    return JobSpec(
        workload=WorkloadRef(name="EP", scale=scale),
        policy=PolicySpec.static(threads),
        config=config or MachineConfig.asplos08_baseline(),
    )


# -- specs and keys ----------------------------------------------------------

def test_key_is_stable_and_content_addressed():
    assert ep_spec().key() == ep_spec().key()
    assert len(ep_spec().key()) == 64  # sha256 hex


@pytest.mark.parametrize("other", [
    ep_spec(threads=4),
    ep_spec(scale=0.2),
    ep_spec(config=MachineConfig.asplos08_baseline().with_cores(16)),
    JobSpec(workload=WorkloadRef(name="PageMine", scale=0.1),
            policy=PolicySpec.static(2),
            config=MachineConfig.asplos08_baseline()),
    JobSpec(workload=WorkloadRef(name="EP", scale=0.1),
            policy=PolicySpec.sat(),
            config=MachineConfig.asplos08_baseline()),
])
def test_key_changes_with_any_input(other: JobSpec):
    assert other.key() != ep_spec().key()


def test_static_none_and_explicit_threads_hash_differently():
    # static-ncores and static-32 run identically on a 32-core machine
    # but carry different policy names, so they must not share a key.
    assert (ep_spec(threads=None).key() != ep_spec(threads=32).key())


def test_spec_round_trips_through_dict():
    spec = ep_spec()
    clone = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert clone == spec
    assert clone.key() == spec.key()


def test_synthetic_ref_round_trips_and_builds():
    ref = WorkloadRef.synthetic(cs_fraction=0.05, bus_lines=16,
                                iterations=32)
    assert WorkloadRef.from_dict(ref.to_dict()) == ref
    app = ref.build()
    assert app.kernels[0].total_iterations == 32
    assert "cs=0.05" in ref.label


def test_config_round_trips_including_sanitizer():
    cfg = MachineConfig.small().with_sanitizer(SanitizerConfig(
        ignore_address_ranges=((0, 64), (128, 256))))
    clone = config_from_dict(json.loads(json.dumps(config_to_dict(cfg))))
    assert clone == cfg


def test_invalid_specs_rejected():
    with pytest.raises(JobError):
        WorkloadRef(name="EP", kind="nope")
    with pytest.raises(JobError):
        PolicySpec(kind="oracle")
    with pytest.raises(JobError):
        PolicySpec(kind="sat", threads=4)
    with pytest.raises(JobError):
        PolicySpec.static(0)


def test_policy_labels():
    assert PolicySpec.static(7).label == "static-7"
    assert PolicySpec.static().label == "static-ncores"
    assert PolicySpec.bat().label == "bat"


# -- result serialization -----------------------------------------------------

def test_app_result_round_trip_is_exact():
    res = run_application(get("EP").build(0.1), StaticPolicy(2),
                          MachineConfig.asplos08_baseline())
    data = json.loads(json.dumps(app_result_to_dict(res)))
    assert app_result_from_dict(data) == res


def test_estimates_round_trip_preserves_infinities():
    est = Estimates(t_cs=0.0, t_nocs=123.5, bu1=0.0,
                    p_cs_real=math.inf, p_bw_real=math.inf,
                    p_cs=32, p_bw=32, p_fdt=32)
    data = json.loads(json.dumps(estimates_to_dict(est)))
    assert data["p_cs_real"] == "inf"  # strict JSON, no Infinity literal
    assert estimates_from_dict(data) == est


# -- the cache ----------------------------------------------------------------

def test_cache_put_get_round_trip(tmp_path):
    cache = ResultCache(tmp_path)
    spec = ep_spec()
    result = {"app_name": "EP", "policy_name": "static-2",
              "kernel_infos": []}
    cache.put(spec.key(), spec.to_dict(), result)
    assert cache.get(spec.key()) == result
    assert len(cache) == 1
    assert cache.get("0" * 64) is None  # miss


def test_cache_entry_is_schema_tagged(tmp_path):
    cache = ResultCache(tmp_path)
    key = ep_spec().key()
    cache.put(key, {}, {"x": 1})
    path = cache.path_for(key)
    assert f"v{SCHEMA_VERSION}" in str(path)
    payload = json.loads(path.read_text())
    assert payload["schema"] == SCHEMA_VERSION
    assert payload["key"] == key


@pytest.mark.parametrize("garbage", [
    "",                                  # truncated to nothing
    '{"schema": 1, "key": ',             # truncated mid-JSON
    "not json at all \x00",              # garbage bytes
    '{"schema": 999, "key": "k", "result": {}}',   # foreign schema
    '{"schema": 1, "key": "wrong", "result": {}}',  # key mismatch
    '[1, 2, 3]',                         # wrong shape
    '{"schema": 1, "result": "str"}',    # non-dict result
])
def test_cache_corruption_is_a_miss_not_a_crash(tmp_path, garbage):
    cache = ResultCache(tmp_path)
    key = ep_spec().key()
    cache.put(key, {}, {"x": 1})
    cache.path_for(key).write_text(garbage)
    assert cache.get(key) is None
    assert not cache.path_for(key).exists()  # bad entry discarded


def test_cache_default_dir_honors_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
    assert default_cache_dir() == tmp_path / "custom"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == tmp_path / "xdg" / "repro"


# -- pre-flight gate ---------------------------------------------------------

def test_preflight_key_ignores_policy():
    from repro.jobs import preflight_key

    static = ep_spec(threads=2)
    fdt = JobSpec(workload=static.workload, policy=PolicySpec.fdt(),
                  config=static.config)
    assert preflight_key(static) == preflight_key(fdt)
    assert preflight_key(static) != static.key()
    other = ep_spec(scale=0.2)
    assert preflight_key(static) != preflight_key(other)


def test_run_preflight_passes_clean_workload():
    from repro.jobs import run_preflight

    verdict = run_preflight(ep_spec())
    assert verdict.ok
    assert verdict.fatal == ()
    # Round-trips through the cache encoding.
    from repro.jobs.preflight import PreflightVerdict
    assert PreflightVerdict.from_dict(verdict.to_dict()) == verdict


def test_runner_preflight_rejects_fatal_workload(tmp_path, monkeypatch):
    from repro.jobs import JobRunner
    from repro.jobs.preflight import PreflightVerdict
    import repro.jobs.api as jobs_api

    bad = PreflightVerdict(workload="EP@0.1", ok=False,
                           counts={"static-barrier-count-mismatch": 1},
                           fatal=("threads disagree on barrier counts",))
    analyzed = []

    def fake_preflight(spec):
        analyzed.append(spec.workload.label)
        return bad

    monkeypatch.setattr(jobs_api, "run_preflight", fake_preflight)
    runner = JobRunner(cache=None, preflight=True)
    with pytest.raises(JobError, match="pre-flight"):
        runner.run([ep_spec()])
    assert analyzed == ["EP@0.1"]
    entries = runner.manifest.entries
    assert entries[-1].status == "preflight-failed"
    assert entries[-1].backend == "static"


def test_runner_preflight_verdict_is_cached(tmp_path):
    from repro.jobs import JobRunner, preflight_key

    cache = ResultCache(tmp_path / "cache")
    spec = ep_spec()
    runner = JobRunner(cache=cache, preflight=True)
    runner.run([spec])
    pkey = preflight_key(spec)
    stored = cache.get(pkey)
    assert stored is not None and stored["ok"] is True

    # A fresh runner resolves the verdict from the cache: poison the
    # entry and verify the gate now refuses without re-analyzing.
    cache.put(pkey, {"preflight": spec.workload.to_dict()},
              {"workload": spec.workload.label, "ok": False,
               "counts": {}, "fatal": ["poisoned verdict"]})
    fresh = JobRunner(cache=cache, preflight=True)
    fresh._memo.clear()
    with pytest.raises(JobError, match="poisoned verdict"):
        fresh.run([ep_spec(threads=4)])  # different job, same workload


def test_runner_preflight_off_by_default():
    from repro.jobs import JobRunner

    runner = JobRunner(cache=None)
    assert runner.preflight is False
    runner.run([ep_spec()])  # no gate, computes normally
