"""Unit tests for static chunking and the ParallelFor adapter."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.isa.ops import Compute
from repro.runtime.parallel import ParallelFor, static_chunks


def test_chunks_partition_exactly():
    chunks = static_chunks(100, 7)
    covered = [i for c in chunks for i in c]
    assert covered == list(range(100))


def test_chunk_sizes_differ_by_at_most_one():
    chunks = static_chunks(100, 7)
    sizes = [len(c) for c in chunks]
    assert max(sizes) - min(sizes) <= 1
    assert sizes[0] >= sizes[-1]  # extras go to the first threads


def test_even_division():
    chunks = static_chunks(64, 8)
    assert all(len(c) == 8 for c in chunks)


def test_more_threads_than_iterations_gives_empty_chunks():
    chunks = static_chunks(3, 8)
    assert sum(len(c) for c in chunks) == 3
    assert sum(1 for c in chunks if len(c) == 0) == 5


def test_start_offset_shifts_ranges():
    chunks = static_chunks(10, 2, start=100)
    assert chunks[0] == range(100, 105)
    assert chunks[1] == range(105, 110)


def test_zero_iterations():
    chunks = static_chunks(0, 4)
    assert all(len(c) == 0 for c in chunks)


def test_invalid_arguments():
    with pytest.raises(ConfigError):
        static_chunks(10, 0)
    with pytest.raises(ConfigError):
        static_chunks(-1, 2)


def test_parallel_for_builds_one_factory_per_thread():
    def body(iters, tid, team):
        for _ in iters:
            yield Compute(1)

    pfor = ParallelFor(total_iterations=10, body=body)
    factories = pfor.factories(num_threads=3)
    assert len(factories) == 3
    ops = list(factories[0](0, 3))
    assert len(ops) == 4  # ceil(10/3)


def test_parallel_for_subrange():
    def body(iters, tid, team):
        yield Compute(len(iters))

    pfor = ParallelFor(total_iterations=100, body=body)
    sub = pfor.subrange(10, 30)
    assert sub.total_iterations == 20
    assert sub.start == 10


def test_subrange_bounds_checked():
    pfor = ParallelFor(total_iterations=10, body=lambda i, t, n: iter([]))
    with pytest.raises(ConfigError):
        pfor.subrange(5, 20)
