"""Tests for the policy-comparison helper."""

from __future__ import annotations

import pytest

from repro.analysis.compare import compare_policies
from repro.errors import ConfigError
from repro.fdt.policies import FdtPolicy, StaticPolicy
from repro.sim.config import MachineConfig
from repro.workloads import get

CFG = MachineConfig.small()


def builders():
    return {"EP": lambda: get("EP").build(0.1)}


def test_matrix_shape_and_normalization():
    result = compare_policies(builders(),
                              [StaticPolicy(8), StaticPolicy(2)],
                              config=CFG)
    assert result.policies == ["static-8", "static-2"]
    assert result.workloads == ["EP"]
    base = result.cell("EP", "static-8")
    assert base.norm_time == pytest.approx(1.0)
    assert base.norm_power == pytest.approx(1.0)
    other = result.cell("EP", "static-2")
    assert other.norm_time != 1.0


def test_baseline_index_selects_normalizer():
    result = compare_policies(builders(),
                              [StaticPolicy(8), StaticPolicy(2)],
                              config=CFG, baseline_index=1)
    assert result.baseline == "static-2"
    assert result.cell("EP", "static-2").norm_time == pytest.approx(1.0)


def test_gmeans_and_format():
    result = compare_policies(builders(),
                              [StaticPolicy(8), FdtPolicy()], config=CFG)
    assert result.gmean_time("static-8") == pytest.approx(1.0)
    text = result.format()
    assert "gmean" in text
    assert "fdt-sat+bat" in text


def test_unknown_cell_raises():
    result = compare_policies(builders(), [StaticPolicy(2)], config=CFG)
    with pytest.raises(KeyError):
        result.cell("EP", "nope")


def test_validation():
    with pytest.raises(ConfigError):
        compare_policies({}, [StaticPolicy(1)])
    with pytest.raises(ConfigError):
        compare_policies(builders(), [StaticPolicy(1)], baseline_index=5)
