"""Unit tests for the kernel base classes and adapters."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.fdt.kernel import DataParallelKernel, FunctionKernel, TeamParallelKernel
from repro.isa.ops import BarrierWait, Compute


def test_function_kernel_wraps_a_plain_body():
    calls = []

    def body(i):
        calls.append(i)
        yield Compute(10)

    kernel = FunctionKernel("fn", total_iterations=5, body=body)
    assert kernel.total_iterations == 5
    list(kernel.serial_iteration(3))
    assert calls == [3]


def test_function_kernel_rejects_empty_loop():
    with pytest.raises(WorkloadError):
        FunctionKernel("fn", total_iterations=0, body=lambda i: iter([]))


def test_data_parallel_factories_chunk_iterations():
    seen: list[list[int]] = [[], [], []]

    class K(DataParallelKernel):
        name = "k"

        @property
        def total_iterations(self):
            return 10

        def serial_iteration(self, i):
            yield Compute(1)

    kernel = K()
    factories = kernel.factories(range(10), 3)
    assert len(factories) == 3
    counts = [sum(1 for _ in f(t, 3)) for t, f in enumerate(factories)]
    assert sum(counts) == 10
    assert max(counts) - min(counts) <= 1


def test_data_parallel_respects_range_offset():
    visited = []

    class K(DataParallelKernel):
        name = "k"

        @property
        def total_iterations(self):
            return 100

        def serial_iteration(self, i):
            visited.append(i)
            yield Compute(1)

    kernel = K()
    for t, f in enumerate(kernel.factories(range(40, 50), 2)):
        list(f(t, 2))
    assert sorted(visited) == list(range(40, 50))


def test_team_parallel_every_thread_runs_every_iteration():
    visits: list[tuple[int, int]] = []

    class K(TeamParallelKernel):
        name = "k"

        @property
        def total_iterations(self):
            return 3

        def team_iteration(self, i, tid, team):
            visits.append((i, tid))
            yield Compute(1)
            yield BarrierWait(0)

    kernel = K()
    for tid, f in enumerate(kernel.factories(range(3), 2)):
        list(f(tid, 2))
    assert sorted(visits) == [(i, t) for i in range(3) for t in range(2)]


def test_team_parallel_serial_view_is_team_of_one():
    class K(TeamParallelKernel):
        name = "k"

        @property
        def total_iterations(self):
            return 1

        def team_iteration(self, i, tid, team):
            yield Compute(team * 100)

    ops = list(K().serial_iteration(0))
    assert ops == [Compute(100)]


def test_validate_team_rejects_zero():
    class K(DataParallelKernel):
        name = "k"

        @property
        def total_iterations(self):
            return 1

        def serial_iteration(self, i):
            yield Compute(1)

    with pytest.raises(WorkloadError):
        K().factories(range(1), 0)
