"""Unit tests for the full memory hierarchy timing and coherence."""

from __future__ import annotations

import pytest

from repro.sim.coherence import MesiState
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine


@pytest.fixture
def m() -> Machine:
    return Machine(MachineConfig.asplos08_baseline())


ADDR = 1 << 20


def test_cold_load_goes_to_dram(m: Machine):
    done = m.memsys.access(core=0, addr=ADDR, is_write=False, now=0)
    # Must include at least L1+L2+L3+bus latency+DRAM+transfer.
    assert done > 150
    assert m.memsys.l3.misses == 1
    assert m.memsys.bus.stats.transfers == 1
    assert m.memsys.dram.stats.accesses == 1


def test_l1_hit_costs_one_cycle(m: Machine):
    t1 = m.memsys.access(0, ADDR, False, 0)
    t2 = m.memsys.access(0, ADDR, False, t1)
    assert t2 - t1 == m.config.l1_latency


def test_l2_hit_after_l1_eviction(m: Machine):
    t = m.memsys.access(0, ADDR, False, 0)
    # Evict the line from L1 by filling its set (L1 is 2-way, 64 sets).
    l1 = m.memsys.l1s[0]
    sets = l1.num_sets
    for k in range(1, 3):
        t = m.memsys.access(0, ADDR + k * sets * 64, False, t)
    t2 = m.memsys.access(0, ADDR, False, t)
    assert t2 - t == m.config.l1_latency + m.config.l2_latency


def test_second_core_load_is_cache_to_cache(m: Machine):
    t = m.memsys.access(0, ADDR, False, 0)
    before = m.memsys.bus.stats.transfers
    t2 = m.memsys.access(1, ADDR, False, t)
    assert m.memsys.bus.stats.transfers == before  # no new off-chip traffic
    assert m.memsys.directory.stats.cache_to_cache == 1
    assert t2 - t < 100  # on-chip transfer, far cheaper than DRAM


def test_store_then_remote_load_pulls_dirty_data(m: Machine):
    t = m.memsys.access(0, ADDR, True, 0)
    t2 = m.memsys.access(1, ADDR, False, t)
    assert m.memsys.directory.stats.cache_to_cache == 1
    # Both now share the line.
    line = m.memsys.line_of(ADDR)
    assert m.memsys.l2s[0].peek(line) is MesiState.SHARED
    assert m.memsys.l2s[1].peek(line) is MesiState.SHARED


def test_store_to_shared_line_upgrades_and_invalidates(m: Machine):
    t = m.memsys.access(0, ADDR, False, 0)
    t = m.memsys.access(1, ADDR, False, t)
    t = m.memsys.access(0, ADDR, True, t)
    line = m.memsys.line_of(ADDR)
    assert m.memsys.l2s[0].peek(line) is MesiState.MODIFIED
    assert m.memsys.l2s[1].peek(line) is None
    assert m.memsys.directory.stats.upgrades + m.memsys.directory.stats.getm >= 1


def test_store_hit_in_exclusive_is_silent_upgrade(m: Machine):
    t = m.memsys.access(0, ADDR, False, 0)  # E
    upgrades_before = m.memsys.directory.stats.upgrades
    t2 = m.memsys.access(0, ADDR, True, t)
    assert t2 - t == m.config.l1_latency
    assert m.memsys.directory.stats.upgrades == upgrades_before
    line = m.memsys.line_of(ADDR)
    assert m.memsys.l2s[0].peek(line) is MesiState.MODIFIED


def test_write_ping_pong_counts_invalidations(m: Machine):
    t = 0
    for i in range(6):
        t = m.memsys.access(i % 2, ADDR, True, t)
    assert m.memsys.directory.stats.getm >= 5
    assert m.memsys.directory.stats.cache_to_cache >= 5


def test_dirty_l2_eviction_writes_back_to_l3(m: Machine):
    t = m.memsys.access(0, ADDR, True, 0)
    # Evict by filling the L2 set (4-way, 256 sets).
    sets = m.memsys.l2s[0].num_sets
    for k in range(1, 6):
        t = m.memsys.access(0, ADDR + k * sets * 64, False, t)
    assert m.memsys.stats.l2_writebacks >= 1
    # The L3 copy is now marked dirty.
    line = m.memsys.line_of(ADDR)
    bank = m.memsys.l3.bank_of(line)
    assert bank.cache.peek(line) is True


def test_loads_and_stores_counted(m: Machine):
    m.memsys.access(0, ADDR, False, 0)
    m.memsys.access(0, ADDR + 64, True, 500)
    assert m.memsys.stats.loads == 1
    assert m.memsys.stats.stores == 1


def test_addresses_in_same_line_share_one_fill(m: Machine):
    t = m.memsys.access(0, ADDR, False, 0)
    t2 = m.memsys.access(0, ADDR + 32, False, t)
    assert t2 - t == m.config.l1_latency
    assert m.memsys.l3.misses == 1


def test_l3_inclusive_recall_invalidates_private_copies():
    cfg = MachineConfig.small(num_cores=2)
    m = Machine(cfg)
    t = m.memsys.access(0, ADDR, False, 0)
    line = m.memsys.line_of(ADDR)
    bank = m.memsys.l3.bank_of(line)
    # Thrash that L3 bank set until the line is recalled.
    sets = bank.cache.num_sets
    k = 1
    while bank.cache.peek(line) is not None and k < 4096:
        conflict = ADDR + k * sets * cfg.l3_banks * 64
        if m.memsys.l3.bank_of(m.memsys.line_of(conflict)) is bank:
            t = m.memsys.access(1, conflict, False, t)
        k += 1
    assert bank.cache.peek(line) is None
    assert m.memsys.l2s[0].peek(line) is None, "inclusion violated"
