"""Unit tests for the performance-counter file."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.isa.ops import Compute, CounterKind, Load, ReadCounter
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine


def test_cycle_counter_tracks_clock(small_machine: Machine):
    values = []

    def factory(tid, team):
        t0 = yield ReadCounter(CounterKind.CYCLES)
        values.append(t0)
        yield Compute(200)
        t1 = yield ReadCounter(CounterKind.CYCLES)
        values.append(t1)

    small_machine.run_serial(factory)
    assert values[1] - values[0] >= 100  # 200 instr at 2-wide


def test_bus_busy_counter_counts_transfers(small_machine: Machine):
    values = []

    def factory(tid, team):
        b0 = yield ReadCounter(CounterKind.BUS_BUSY_CYCLES)
        for i in range(4):
            yield Load((1 << 21) + i * 64)
        b1 = yield ReadCounter(CounterKind.BUS_BUSY_CYCLES)
        values.append(b1 - b0)

    small_machine.run_serial(factory)
    per_line = small_machine.config.bus_cycles_per_line
    assert values[0] == 4 * per_line


def test_retired_counter_is_per_core(small_machine: Machine):
    values = {}

    def factory(tid, team):
        yield Compute(100 * (tid + 1))
        r = yield ReadCounter(CounterKind.RETIRED_OPS)
        values[tid] = r

    small_machine.run_parallel([factory] * 2, spawn_overhead=False)
    assert values[0] >= 100
    assert values[1] >= 200
    assert values[1] > values[0]


def test_l3_miss_counter(small_machine: Machine):
    values = []

    def factory(tid, team):
        m0 = yield ReadCounter(CounterKind.L3_MISSES)
        yield Load(1 << 21)
        yield Load(1 << 21)  # second access hits
        m1 = yield ReadCounter(CounterKind.L3_MISSES)
        values.append(m1 - m0)

    small_machine.run_serial(factory)
    assert values[0] == 1


def test_unknown_counter_raises(small_machine: Machine):
    with pytest.raises(SimulationError):
        small_machine.counters.read("bogus", 0)  # type: ignore[arg-type]


def test_counter_read_costs_one_cycle(small_machine: Machine):
    def factory(tid, team):
        _ = yield ReadCounter(CounterKind.CYCLES)
        _ = yield ReadCounter(CounterKind.CYCLES)

    region = small_machine.run_serial(factory)
    assert region.cycles <= 4


def test_determinism_identical_runs():
    """Two machines running the same program produce identical traces."""
    from repro.fdt.policies import StaticPolicy
    from repro.fdt.runner import run_application
    from repro.workloads import get

    def run():
        res = run_application(get("PageMine").build(0.1), StaticPolicy(4),
                              MachineConfig.asplos08_baseline())
        r = res.result
        return (r.cycles, r.busy_core_cycles, r.bus_busy_cycles,
                r.l3_misses, r.retired_instructions, r.lock_acquisitions)

    assert run() == run()


def test_determinism_fdt_runs():
    from repro.fdt.policies import FdtPolicy
    from repro.fdt.runner import run_application
    from repro.workloads import get

    def run():
        res = run_application(get("EP").build(0.25), FdtPolicy(),
                              MachineConfig.asplos08_baseline())
        info = res.kernel_infos[0]
        return (info.threads, info.trained_iterations, res.cycles)

    assert run() == run()
