"""Unit tests for the FIFO lock manager."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import SimulationError
from repro.runtime.locks import LockManager
from repro.sim.config import MachineConfig
from repro.sim.ring import Ring


def make_locks(**config_overrides) -> LockManager:
    cfg = replace(MachineConfig.small(num_cores=4), **config_overrides)
    ring = Ring(cfg.num_cores + cfg.l3_banks)
    return LockManager(cfg, ring, core_nodes=list(range(cfg.num_cores)))


@pytest.fixture
def locks() -> LockManager:
    return make_locks()


def test_free_lock_granted_immediately(locks: LockManager):
    grant = locks.acquire(0, core=1, now=100)
    assert grant is not None and grant >= 100
    assert locks.holder(0) == 1


def test_contended_acquire_queues(locks: LockManager):
    locks.acquire(0, core=0, now=0)
    assert locks.acquire(0, core=1, now=5) is None
    assert locks.waiters(0) == 1
    assert locks.stats.contended_acquisitions == 1


def test_release_hands_off_in_fifo_order(locks: LockManager):
    locks.acquire(0, core=0, now=0)
    locks.acquire(0, core=2, now=1)
    locks.acquire(0, core=1, now=2)
    next_core, grant = locks.release(0, core=0, now=50)
    assert next_core == 2
    assert grant > 50
    next_core, grant2 = locks.release(0, core=2, now=grant + 10)
    assert next_core == 1


def test_release_without_waiters_frees_lock(locks: LockManager):
    grant = locks.acquire(0, core=0, now=0)
    assert locks.release(0, core=0, now=grant + 10) is None
    assert locks.holder(0) is None


def test_release_by_non_holder_raises(locks: LockManager):
    locks.acquire(0, core=0, now=0)
    with pytest.raises(SimulationError):
        locks.release(0, core=1, now=5)


def test_release_of_unknown_lock_raises(locks: LockManager):
    with pytest.raises(SimulationError):
        locks.release(42, core=0, now=0)


def test_reacquire_by_last_holder_is_cheap(locks: LockManager):
    g1 = locks.acquire(0, core=0, now=0)
    locks.release(0, core=0, now=g1 + 5)
    g2 = locks.acquire(0, core=0, now=g1 + 10)
    assert g2 - (g1 + 10) <= 2  # lock line still resident


def test_handoff_to_distant_core_costs_more(locks: LockManager):
    g1 = locks.acquire(0, core=0, now=0)
    locks.release(0, core=0, now=g1 + 1)
    near = locks.acquire(1, core=0, now=g1 + 1)  # fresh lock, no last holder
    g2 = locks.acquire(0, core=2, now=g1 + 2)  # handoff from core 0 to 2
    cost_far = g2 - (g1 + 2)
    assert cost_far >= MachineConfig.small().lock_handoff_base


def test_hold_cycles_accumulate(locks: LockManager):
    g = locks.acquire(0, core=0, now=0)
    locks.release(0, core=0, now=g + 123)
    assert locks.stats.total_hold_cycles == 123


def test_wait_cycles_accumulate(locks: LockManager):
    locks.acquire(0, core=0, now=0)
    locks.acquire(0, core=1, now=10)
    _next, grant = locks.release(0, core=0, now=200)
    assert locks.stats.total_wait_cycles == grant - 10


def test_independent_locks_do_not_interact(locks: LockManager):
    locks.acquire(0, core=0, now=0)
    grant = locks.acquire(1, core=1, now=0)
    assert grant is not None
    assert locks.holder(0) == 0
    assert locks.holder(1) == 1


def test_lifo_grant_order_pops_newest_waiter():
    locks = make_locks(lock_grant_order="lifo")
    locks.acquire(0, core=0, now=0)
    locks.acquire(0, core=1, now=1)
    locks.acquire(0, core=2, now=2)
    next_core, grant = locks.release(0, core=0, now=50)
    assert next_core == 2  # newest waiter wins under LIFO
    next_core, _grant = locks.release(0, core=2, now=grant + 5)
    assert next_core == 1


def test_fresh_lock_grant_is_resident_latency(locks: LockManager):
    # No last holder: the lock line is born resident, 2-cycle grant.
    assert locks.acquire(7, core=3, now=100) == 102


def test_same_core_reacquire_costs_resident_latency(locks: LockManager):
    g1 = locks.acquire(0, core=2, now=0)
    locks.release(0, core=2, now=g1 + 8)
    # Same core re-acquires: line still in its cache in M state.
    assert locks.acquire(0, core=2, now=g1 + 20) == g1 + 22


def test_cross_core_handoff_beats_resident_latency(locks: LockManager):
    g1 = locks.acquire(0, core=0, now=0)
    locks.release(0, core=0, now=g1 + 1)
    grant = locks.acquire(0, core=3, now=g1 + 10)
    base = MachineConfig.small().lock_handoff_base
    assert grant - (g1 + 10) >= base  # migration >> resident 2 cycles


def test_release_of_never_created_lock_raises(locks: LockManager):
    locks.acquire(0, core=0, now=0)  # manager is live, lock 9 is not
    with pytest.raises(SimulationError):
        locks.release(9, core=0, now=5)


def test_any_held_reflects_state(locks: LockManager):
    assert locks.any_held() is False
    g = locks.acquire(0, core=0, now=0)
    assert locks.any_held() is True
    locks.release(0, core=0, now=g + 1)
    assert locks.any_held() is False
