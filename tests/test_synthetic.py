"""Tests for the synthetic dial-a-limiter kernels."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.fdt.policies import FdtMode, FdtPolicy, StaticPolicy
from repro.fdt.runner import run_application
from repro.isa.ops import BarrierWait, Load, Lock
from repro.isa.program import validate_program
from repro.sim.config import MachineConfig
from repro.workloads.synthetic import (
    SyntheticKernel,
    SyntheticParams,
    build_synthetic,
)

CFG = MachineConfig.asplos08_baseline()
SMALL = MachineConfig.small()


def test_params_validation():
    with pytest.raises(WorkloadError):
        SyntheticParams(iterations=0)
    with pytest.raises(WorkloadError):
        SyntheticParams(cs_instr=-1)
    with pytest.raises(WorkloadError):
        build_synthetic(cs_fraction=1.0)


def test_pure_compute_kernel_has_no_locks_or_loads():
    kernel = SyntheticKernel(SyntheticParams(iterations=4, cs_instr=0,
                                             lines_per_iteration=0))
    ops = validate_program(kernel.serial_iteration(0))
    assert not any(isinstance(op, Lock) for op in ops)
    assert not any(isinstance(op, Load) for op in ops)
    assert any(isinstance(op, BarrierWait) for op in ops)


def test_cs_knob_adds_exactly_one_critical_section():
    kernel = SyntheticKernel(SyntheticParams(iterations=4, cs_instr=500))
    ops = validate_program(kernel.serial_iteration(0))
    assert sum(1 for op in ops if isinstance(op, Lock)) == 1


def test_streaming_knob_emits_fresh_lines_without_reuse():
    kernel = SyntheticKernel(SyntheticParams(iterations=3,
                                             lines_per_iteration=8,
                                             reuse=False))
    addrs = set()
    for i in range(3):
        for op in kernel.serial_iteration(i):
            if isinstance(op, Load):
                addrs.add(op.addr)
    assert len(addrs) == 24  # no address reused


def test_reuse_knob_repeats_the_same_lines():
    kernel = SyntheticKernel(SyntheticParams(iterations=3,
                                             lines_per_iteration=8,
                                             reuse=True))
    first = {op.addr for op in kernel.serial_iteration(0)
             if isinstance(op, Load)}
    second = {op.addr for op in kernel.serial_iteration(1)
              if isinstance(op, Load)}
    assert first == second


def test_cs_fraction_measured_close_to_requested():
    app = build_synthetic(cs_fraction=0.05, iterations=64,
                          compute_instr=40_000)
    res = run_application(app, FdtPolicy(FdtMode.SAT), CFG)
    measured = res.kernel_infos[0].estimates.cs_fraction
    assert measured == pytest.approx(0.05, abs=0.02)


def test_bus_knob_drives_bat():
    app = build_synthetic(cs_fraction=0.0, bus_lines=160, iterations=64,
                          compute_instr=10_000)
    res = run_application(app, FdtPolicy(FdtMode.BAT), CFG)
    info = res.kernel_infos[0]
    assert info.estimates.bu1 > 0.08
    assert info.threads < 32


def test_no_limiter_scales_to_all_cores():
    app = build_synthetic(cs_fraction=0.0, bus_lines=0, iterations=64)
    res = run_application(app, FdtPolicy(FdtMode.COMBINED), CFG)
    assert res.kernel_infos[0].threads == 32


def test_team_splits_work():
    kernel = SyntheticKernel(SyntheticParams(iterations=2,
                                             lines_per_iteration=16))
    t0 = [op for op in kernel.team_iteration(0, 0, 4) if isinstance(op, Load)]
    t3 = [op for op in kernel.team_iteration(0, 3, 4) if isinstance(op, Load)]
    assert len(t0) == len(t3) == 4
    assert {o.addr for o in t0}.isdisjoint({o.addr for o in t3})


def test_runs_under_static_policy_on_small_machine():
    app = build_synthetic(cs_fraction=0.1, iterations=16,
                          compute_instr=4000)
    res = run_application(app, StaticPolicy(4), SMALL)
    assert res.cycles > 0
    assert res.result.lock_acquisitions == 16 * 4
