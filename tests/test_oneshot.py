"""Tests for FDT on non-iterative kernels (Section 9)."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.fdt.oneshot import OneShotKernel
from repro.fdt.policies import FdtMode, FdtPolicy
from repro.fdt.runner import Application, run_application
from repro.isa.ops import BarrierWait, Compute, Lock, Unlock
from repro.runtime.parallel import static_chunks
from repro.sim.config import MachineConfig

CFG = MachineConfig.asplos08_baseline()


def make_cs_oneshot(executed: list | None = None,
                    work_units: int = 64) -> OneShotKernel:
    """A one-shot region with the Figure-1 CS pattern (~10% CS)."""

    def work(thread_id: int, team: int):
        if executed is not None and thread_id == 0:
            executed.append(team)
        mine = static_chunks(work_units, team)[thread_id]
        for _ in mine:
            yield Compute(1800)
            yield Lock(0)
            yield Compute(200)
            yield Unlock(0)
        yield BarrierWait(0)

    def sample(i: int):
        # The synthesized sample: one work unit's behaviour.
        yield Compute(1800)
        yield Lock(0)
        yield Compute(200)
        yield Unlock(0)

    return OneShotKernel("oneshot-cs", work, sample, num_samples=16)


def test_requires_enough_samples():
    with pytest.raises(WorkloadError):
        OneShotKernel("x", lambda t, n: iter([]), lambda i: iter([]),
                      num_samples=5)


def test_training_consumes_only_samples():
    executed: list[int] = []
    kernel = make_cs_oneshot(executed)
    res = run_application(Application.single(kernel),
                          FdtPolicy(FdtMode.SAT), CFG)
    info = res.kernel_infos[0]
    assert info.trained_iterations <= 16
    assert executed == [info.threads], "real work ran exactly once"


def test_decision_reflects_sample_cs_fraction():
    kernel = make_cs_oneshot()
    res = run_application(Application.single(kernel),
                          FdtPolicy(FdtMode.SAT), CFG)
    info = res.kernel_infos[0]
    # 10% CS -> P_CS = sqrt(9) = 3.
    assert info.estimates.cs_fraction == pytest.approx(0.10, abs=0.02)
    assert 2 <= info.threads <= 4


def test_one_shot_work_is_split_by_the_team():
    kernel = make_cs_oneshot()
    res = run_application(Application.single(kernel),
                          FdtPolicy(FdtMode.SAT), CFG)
    # Locks: 16 trained samples + 64 work units.
    assert res.result.lock_acquisitions == 16 + 64


def test_unconsumed_samples_run_on_master():
    """Samples training did not consume still execute (the peeled loop's
    remainder), on thread 0 of the execution team."""
    kernel = make_cs_oneshot()
    res = run_application(Application.single(kernel),
                          FdtPolicy(FdtMode.SAT), CFG)
    info = res.kernel_infos[0]
    assert info.trained_iterations < 16
    # All samples + all work units passed through the lock exactly once.
    assert res.result.lock_acquisitions == 16 + 64


def test_serial_iteration_views():
    kernel = make_cs_oneshot()
    sample_ops = list(kernel.serial_iteration(0))
    work_ops = list(kernel.serial_iteration(16))
    assert len(work_ops) > len(sample_ops)
    assert kernel.total_iterations == 17
