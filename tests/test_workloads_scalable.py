"""Functional tests for the scalable workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.fdt.policies import StaticPolicy
from repro.fdt.runner import Application, run_application
from repro.isa.ops import BarrierWait, Load, Lock, Store
from repro.sim.config import MachineConfig
from repro.workloads.bscholes import BScholesKernel, BScholesParams
from repro.workloads.bt import BtKernel, BtParams
from repro.workloads.mg import MgInitKernel, MgKernel, MgParams
from repro.workloads.sconv import _State as SConvState
from repro.workloads.sconv import SConvParams, _PassKernel


def small_cfg() -> MachineConfig:
    return MachineConfig.small()


# -- BT -------------------------------------------------------------------------

def test_bt_relaxation_smooths_field():
    kernel = BtKernel(BtParams(grid=8, time_steps=10))
    rough_before = float(np.abs(np.diff(kernel.field, axis=0)).sum())
    for i in range(kernel.total_iterations):
        for _op in kernel.serial_iteration(i):
            pass
    rough_after = float(np.abs(np.diff(kernel.field, axis=0)).sum())
    assert rough_after < rough_before


def test_bt_has_no_critical_sections():
    kernel = BtKernel(BtParams(grid=8, time_steps=2))
    ops = list(kernel.serial_iteration(1))
    assert not any(isinstance(op, Lock) for op in ops)
    assert any(isinstance(op, BarrierWait) for op in ops)


def test_bt_iterations_cover_planes_of_steps():
    kernel = BtKernel(BtParams(grid=8, time_steps=5))
    # 5 steps x 8 planes x 2 slabs per plane.
    assert kernel.total_iterations == 80


def test_bt_rejects_bad_params():
    with pytest.raises(WorkloadError):
        BtParams(grid=2)
    with pytest.raises(WorkloadError):
        BtParams(time_steps=0)


# -- MG --------------------------------------------------------------------------

def test_mg_app_has_init_then_solver():
    from repro.workloads import get
    app = get("MG").build(0.34)
    assert isinstance(app.kernels[0], MgInitKernel)
    assert isinstance(app.kernels[1], MgKernel)


def test_mg_vcycle_schedule_descends_and_ascends():
    kernel = MgKernel(MgParams(fine_grid=16, levels=3, v_cycles=1))
    levels = [lvl for lvl, _p, _s in kernel._schedule]
    assert levels[0] == 0
    assert max(levels) == 2
    # One V-cycle: down 0,1,2 then back up 1,0 (per-plane expanded).
    assert levels[-1] == 0


def test_mg_smoothing_reduces_norm():
    kernel = MgKernel(MgParams(fine_grid=16, levels=2, v_cycles=3))
    run_application(Application(name="mg", kernels=(kernel,)),
                    StaticPolicy(2), small_cfg())
    assert len(kernel.norms) >= 2
    assert kernel.norms[-1] < kernel.norms[0]


def test_mg_iteration_sizes_vary_by_level():
    kernel = MgKernel(MgParams(fine_grid=16, levels=3, v_cycles=1))
    fine = len(list(kernel.serial_iteration(0)))
    coarse_idx = next(i for i, (lvl, _p, _s) in enumerate(kernel._schedule)
                      if lvl == 2)
    coarse = len(list(kernel.serial_iteration(coarse_idx)))
    assert fine > coarse


def test_mg_rejects_too_many_levels():
    with pytest.raises(WorkloadError):
        MgParams(fine_grid=16, levels=4)  # coarsest would be 2^3


# -- BScholes ------------------------------------------------------------------------

def test_bscholes_put_call_parity():
    kernel = BScholesKernel(BScholesParams(num_options=1024))
    for i in range(kernel.total_iterations):
        for _op in kernel.serial_iteration(i):
            pass
    r = kernel.params.riskfree
    lhs = kernel.call - kernel.put
    rhs = kernel.spot - kernel.strike * np.exp(-r * kernel.expiry)
    np.testing.assert_allclose(lhs, rhs, atol=1e-8)


def test_bscholes_call_prices_bounded():
    kernel = BScholesKernel(BScholesParams(num_options=512))
    for i in range(kernel.total_iterations):
        for _op in kernel.serial_iteration(i):
            pass
    assert np.all(kernel.call >= -1e-12)
    assert np.all(kernel.call <= kernel.spot + 1e-12)


def test_bscholes_reads_five_arrays_writes_two():
    kernel = BScholesKernel(BScholesParams(num_options=512))
    ops = list(kernel.serial_iteration(0))
    loads = {op.addr for op in ops if isinstance(op, Load)}
    stores = {op.addr for op in ops if isinstance(op, Store)}
    assert len(loads) == 5 * 2  # 32 options x 4 B = 2 lines per array
    assert len(stores) == 2 * 2


def test_bscholes_rejects_tiny_input():
    with pytest.raises(WorkloadError):
        BScholesParams(num_options=8)


# -- SConv ------------------------------------------------------------------------------

def test_sconv_two_pass_matches_direct_convolution():
    state = SConvState(SConvParams(size=128, radius=8))
    for kernel in (_PassKernel(state, 0), _PassKernel(state, 1)):
        for i in range(kernel.total_iterations):
            for _op in kernel.serial_iteration(i):
                pass
    np.testing.assert_allclose(state.output, state.expected(), atol=1e-10)


def test_sconv_kernel_is_normalized():
    state = SConvState(SConvParams(size=128, radius=8))
    assert float(state.kernel.sum()) == pytest.approx(1.0)


def test_sconv_row_pass_reads_input_writes_temp():
    state = SConvState(SConvParams(size=128, radius=8))
    ops = list(_PassKernel(state, 0).serial_iteration(0))
    loads = {op.addr for op in ops if isinstance(op, Load)}
    stores = {op.addr for op in ops if isinstance(op, Store)}
    assert all(state.in_base <= a < state.tmp_base for a in loads)
    assert all(state.tmp_base <= a < state.out_base for a in stores)


def test_sconv_build_shrinks_radius_with_image():
    from repro.workloads import get
    app = get("SConv").build(0.25)  # 128-px image
    state = app.kernels[0].state  # type: ignore[attr-defined]
    assert state.params.radius <= state.params.size // 4


def test_sconv_rejects_bad_params():
    with pytest.raises(WorkloadError):
        SConvParams(size=8)
    with pytest.raises(WorkloadError):
        SConvParams(radius=0)
