"""Trace recorder and exporter correctness.

The acceptance bars from the subsystem's design:

* per-core critical-section spans sum *exactly* to the lock manager's
  measured hold cycles (spans are ``[grant, release)`` from the same
  hook stream the stats come from);
* the FDT decision log reproduces its chosen thread count from its own
  recorded inputs (:meth:`FdtDecisionRecord.replay`);
* the Perfetto export is valid, non-empty ``trace_event`` JSON.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.fdt.policies import FdtMode, FdtPolicy, StaticPolicy
from repro.fdt.runner import run_application
from repro.sim.config import MachineConfig, TraceConfig
from repro.sim.machine import Machine
from repro.sim.stats import busy_fraction
from repro.trace import (
    STATE_BARRIER_WAIT,
    STATE_COMPUTE,
    STATE_CRITICAL_SECTION,
    counters_csv,
    decisions_json,
    run_traced,
    text_summary,
    to_perfetto,
    write_artifacts,
)
from repro.workloads import get

SCALE = 0.1


@pytest.fixture(scope="module")
def pagemine_traced():
    """One traced FDT run of the CS-limited workload, machine included."""
    machine = Machine(MachineConfig.asplos08_baseline().with_trace())
    result = run_application(get("PageMine").build(SCALE),
                             FdtPolicy(FdtMode.COMBINED), machine=machine)
    return machine, result


# -- timeline ----------------------------------------------------------------

def test_cs_spans_sum_exactly_to_lock_hold_cycles(pagemine_traced):
    machine, _result = pagemine_traced
    trace = machine.trace.data
    assert trace.critical_section_cycles > 0
    assert (trace.critical_section_cycles
            == machine.locks.stats.total_hold_cycles)


def test_timeline_covers_every_state(pagemine_traced):
    machine, _result = pagemine_traced
    trace = machine.trace.data
    states = {s.state for s in trace.spans}
    assert STATE_COMPUTE in states
    assert STATE_CRITICAL_SECTION in states
    assert STATE_BARRIER_WAIT in states
    for span in trace.spans:
        assert span.end > span.start
        assert 0 <= span.core < trace.num_cores


def test_counter_samples_land_on_interval_boundaries(pagemine_traced):
    machine, _result = pagemine_traced
    trace = machine.trace.data
    interval = trace.config.sample_interval
    cycles = [s.cycle for s in trace.samples]
    assert cycles == sorted(cycles)
    assert all(c % interval == 0 for c in cycles)
    # Cumulative counters never decrease.
    for prev, cur in zip(trace.samples, trace.samples[1:]):
        assert cur.bus_busy_cycles >= prev.bus_busy_cycles
        assert cur.retired_instructions >= prev.retired_instructions


def test_max_events_caps_spans_and_counts_drops():
    traced = run_traced(get("PageMine").build(SCALE),
                        StaticPolicy(4),
                        trace_config=TraceConfig(max_events=10))
    assert len(traced.trace.spans) == 10
    assert traced.trace.dropped_spans > 0
    assert text_summary(traced.trace).count("dropped") == 1


# -- FDT decision log --------------------------------------------------------

@pytest.mark.parametrize("mode", [FdtMode.SAT, FdtMode.BAT,
                                  FdtMode.COMBINED])
def test_decision_log_replays_to_the_chosen_thread_count(mode):
    traced = run_traced(get("PageMine").build(SCALE), FdtPolicy(mode))
    assert len(traced.trace.decisions) == 1
    record = traced.trace.decisions[0]
    assert record.mode == mode.value
    assert record.samples  # raw training inputs are in the record
    assert record.replay() == record.chosen_threads
    assert record.chosen_threads == traced.result.kernel_infos[0].threads


def test_decision_record_round_trips_through_strict_json(pagemine_traced):
    machine, _result = pagemine_traced
    payload = json.loads(decisions_json(machine.trace.data))
    (decision,) = payload["decisions"]
    record = machine.trace.data.decisions[0]
    assert decision["chosen_threads"] == record.chosen_threads
    assert decision["trained_iterations"] == len(decision["samples"])
    assert decision["t_cs"] == record.t_cs


# -- exporters ---------------------------------------------------------------

def test_perfetto_export_is_valid_and_non_empty(pagemine_traced):
    machine, _result = pagemine_traced
    doc = json.loads(json.dumps(to_perfetto(machine.trace.data)))
    events = doc["traceEvents"]
    assert events
    phases = {e["ph"] for e in events}
    assert {"M", "X", "C", "i"} <= phases
    for e in events:
        if e["ph"] == "X":
            assert e["dur"] > 0 and e["ts"] >= 0


def test_perfetto_cs_spans_match_trace_cs_cycles(pagemine_traced):
    machine, _result = pagemine_traced
    doc = to_perfetto(machine.trace.data)
    cs_total = sum(e["dur"] for e in doc["traceEvents"]
                   if e["ph"] == "X" and e["name"] == STATE_CRITICAL_SECTION)
    assert cs_total == machine.locks.stats.total_hold_cycles


def test_counters_csv_rates_are_sane(pagemine_traced):
    machine, _result = pagemine_traced
    lines = counters_csv(machine.trace.data).strip().splitlines()
    header, rows = lines[0], lines[1:]
    assert header.startswith("cycle,active_cores")
    assert rows
    util_col = header.split(",").index("bus_utilization")
    for row in rows:
        util = float(row.split(",")[util_col])
        assert 0.0 <= util <= 1.0


def test_write_artifacts_produces_all_four_files(tmp_path, pagemine_traced):
    machine, _result = pagemine_traced
    paths = write_artifacts(machine.trace.data, tmp_path / "out")
    assert set(paths) == {"perfetto", "counters", "decisions", "summary"}
    for path in paths.values():
        assert path.exists() and path.stat().st_size > 0
    json.loads(paths["perfetto"].read_text())  # strict JSON


# -- config / helpers --------------------------------------------------------

def test_trace_config_validates_knobs():
    with pytest.raises(ConfigError):
        TraceConfig(sample_interval=0)
    with pytest.raises(ConfigError):
        TraceConfig(min_mem_stall_cycles=-1)
    with pytest.raises(ConfigError):
        TraceConfig(max_events=0)


def test_busy_fraction_clamps_and_handles_empty_intervals():
    assert busy_fraction(10, 0) == 0.0
    assert busy_fraction(10, -5) == 0.0
    assert busy_fraction(0, 100) == 0.0
    assert busy_fraction(50, 100) == 0.5
    assert busy_fraction(200, 100) == 1.0  # straddling transfers clamp


def test_bus_stats_and_run_result_share_the_utilization_definition():
    from repro.sim.bus import BusStats
    from repro.sim.stats import RunResult
    stats = BusStats(busy_cycles=64)
    result = RunResult(cycles=128, busy_core_cycles=0, spin_core_cycles=0,
                       bus_busy_cycles=64, bus_transfers=2, l3_misses=0,
                       l3_accesses=0, retired_instructions=0,
                       lock_acquisitions=0)
    assert stats.utilization(128) == result.bus_utilization == 0.5
    assert stats.utilization(0) == 0.0


def test_run_result_to_dict_carries_derived_metrics():
    from repro.sim.stats import RunResult
    result = RunResult(cycles=1000, busy_core_cycles=2400,
                       spin_core_cycles=300, bus_busy_cycles=120,
                       bus_transfers=4, l3_misses=3, l3_accesses=9,
                       retired_instructions=5000, lock_acquisitions=7)
    data = result.to_dict()
    assert data["spin_core_cycles"] == 300
    assert data["ipc"] == result.ipc == 5.0
    assert data["energy"] == result.energy == 2400.0
    assert data["power"] == result.power == 2.4
    assert data["bus_utilization"] == result.bus_utilization
