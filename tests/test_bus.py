"""Unit tests for the split-transaction off-chip bus."""

from __future__ import annotations

import pytest

from repro.sim.bus import OffChipBus, ReservationTimeline
from repro.sim.config import MachineConfig


@pytest.fixture
def bus() -> OffChipBus:
    return OffChipBus(MachineConfig.asplos08_baseline())


def test_baseline_line_occupancy_is_32_cycles():
    cfg = MachineConfig.asplos08_baseline()
    assert cfg.bus_cycles_per_line == 32


def test_request_phase_is_pure_latency(bus: OffChipBus):
    assert bus.request_phase(100) == 140
    assert bus.request_phase(100) == 140  # no contention on the address bus


def test_data_phase_occupies_bus(bus: OffChipBus):
    done = bus.data_phase(0)
    assert done == 32
    assert bus.busy_cycles == 32
    assert bus.stats.transfers == 1


def test_back_to_back_transfers_serialize(bus: OffChipBus):
    t1 = bus.data_phase(0)
    t2 = bus.data_phase(0)
    assert t2 == t1 + 32
    assert bus.stats.total_wait_cycles == 32


def test_spaced_transfers_do_not_wait(bus: OffChipBus):
    bus.data_phase(0)
    done = bus.data_phase(100)
    assert done == 132
    assert bus.stats.total_wait_cycles == 0


def test_out_of_order_ready_times_fill_gaps(bus: OffChipBus):
    """A transfer ready early must slot into an idle gap, not queue
    behind a reservation made earlier for a later ready time."""
    bus.data_phase(1000)  # reserves [1000, 1032)
    done = bus.data_phase(0)  # ready long before: uses the idle bus now
    assert done == 32
    assert bus.stats.total_wait_cycles == 0


def test_gap_too_small_is_skipped():
    tl = ReservationTimeline()
    tl.reserve(0, 32)      # [0, 32)
    tl.reserve(40, 32)     # [40, 72)
    start = tl.reserve(0, 32)  # gap [32, 40) too small -> goes after 72
    assert start == 72


def test_exact_fit_gap_is_used():
    tl = ReservationTimeline()
    tl.reserve(0, 32)      # [0, 32)
    tl.reserve(64, 32)     # [64, 96)
    start = tl.reserve(0, 32)  # gap [32, 64) fits exactly
    assert start == 32


def test_timeline_reservations_never_overlap():
    tl = ReservationTimeline()
    intervals = []
    readies = [0, 100, 3, 50, 50, 0, 200, 7, 7, 7]
    for r in readies:
        s = tl.reserve(r, 32)
        assert s >= r
        intervals.append((s, s + 32))
    intervals.sort()
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        assert e1 <= s2


def test_utilization_is_busy_over_elapsed(bus: OffChipBus):
    bus.data_phase(0)
    bus.data_phase(0)
    assert bus.stats.utilization(128) == pytest.approx(0.5)
    assert bus.stats.utilization(0) == 0.0


def test_utilization_caps_at_one(bus: OffChipBus):
    bus.data_phase(0)
    assert bus.stats.utilization(16) == 1.0


def test_bandwidth_scaling_changes_occupancy():
    half = MachineConfig.asplos08_baseline().with_bandwidth(0.5)
    double = MachineConfig.asplos08_baseline().with_bandwidth(2.0)
    assert OffChipBus(half).cycles_per_line == 64
    assert OffChipBus(double).cycles_per_line == 16


def test_free_at_tracks_last_booking(bus: OffChipBus):
    bus.data_phase(10)
    assert bus.free_at == 42
