"""Tests for the Amdahl helpers and their relation to Eq. 1."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.models.amdahl import (
    AmdahlModel,
    amdahl_limit,
    amdahl_speedup,
    crossover_threads,
)
from repro.models.sat_model import SatModel


def test_textbook_values():
    # 5% serial: limit 20x; at 32 threads ~12.55x.
    assert amdahl_limit(0.05) == pytest.approx(20.0)
    assert amdahl_speedup(0.05, 32) == pytest.approx(12.55, abs=0.01)


def test_fully_parallel_job():
    assert amdahl_speedup(0.0, 8) == pytest.approx(8.0)
    assert amdahl_limit(0.0) == math.inf


def test_fully_serial_job():
    assert amdahl_speedup(1.0, 64) == pytest.approx(1.0)
    assert amdahl_limit(1.0) == pytest.approx(1.0)


def test_validation():
    with pytest.raises(ValueError):
        amdahl_speedup(1.5, 2)
    with pytest.raises(ValueError):
        amdahl_speedup(0.5, 0)
    with pytest.raises(ValueError):
        amdahl_limit(-0.1)


@given(s=st.floats(0.0, 1.0), p=st.integers(1, 512))
def test_speedup_bounded_by_limit_and_threads(s, p):
    sp = amdahl_speedup(s, p)
    assert 1.0 <= sp <= p + 1e-9
    assert sp <= amdahl_limit(s) + 1e-9


@given(s=st.floats(0.01, 0.99), p=st.integers(1, 100))
def test_speedup_monotone_in_threads(s, p):
    assert amdahl_speedup(s, p + 1) >= amdahl_speedup(s, p)


def test_models_agree_at_one_thread():
    sat = SatModel(t_nocs=900.0, t_cs=100.0)
    amdahl = AmdahlModel(serial=100.0, parallel=900.0)
    assert sat.execution_time(1) == pytest.approx(amdahl.execution_time(1))


def test_eq1_always_at_or_above_amdahl():
    """A per-thread critical section can never beat a fixed serial stub
    of the same single-thread size."""
    sat = SatModel(t_nocs=900.0, t_cs=100.0)
    amdahl = AmdahlModel(serial=100.0, parallel=900.0)
    for p in range(1, 64):
        assert sat.execution_time(p) >= amdahl.execution_time(p) - 1e-9


def test_crossover_for_one_percent_cs():
    """The paper's 1%-CS example: Amdahl says 'fine to ~100x', Eq. 1
    turns the curve up at 10 threads; the 2x divergence lands soon
    after."""
    sat = SatModel(t_nocs=99.0, t_cs=1.0)
    cross = crossover_threads(sat)
    assert 10 < cross < 200


def test_crossover_infinite_without_cs():
    assert crossover_threads(SatModel(t_nocs=100.0, t_cs=0.0)) == math.inf


@given(ratio=st.floats(5.0, 500.0))
def test_crossover_grows_with_cs_ratio(ratio):
    small_cs = SatModel(t_nocs=ratio * 2, t_cs=1.0)
    big_cs = SatModel(t_nocs=ratio, t_cs=1.0)
    assert crossover_threads(small_cs) >= crossover_threads(big_cs)
