"""Unit tests for repro.faults: plans, the injector, hooks, backoff.

Covers the declarative plan layer (validation, JSON round-trips), the
deterministic trigger pipeline (after / every / probability / max_fires
under a fixed seed), the kind-filtering contract between sibling hooks
probing one site, and the jobs-layer backoff schedule the injector is
used to harden.
"""

from __future__ import annotations

import pytest

from repro.errors import FaultError
from repro.faults import (
    PLAN_ENV,
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedIOError,
    SITES,
    active,
    configure_from_env,
    injected,
    install,
    sites_table,
    uninstall,
)
from repro.faults import hooks
from repro.jobs.backoff import (
    DEFAULT_BACKOFF_BASE,
    DEFAULT_BACKOFF_CAP,
    backoff_delay,
    backoff_schedule,
)


@pytest.fixture(autouse=True)
def _disarmed(monkeypatch):
    """Every test starts and ends with no plan armed."""
    monkeypatch.delenv(PLAN_ENV, raising=False)
    uninstall()
    yield
    uninstall()


# -- plan validation and round-trips ----------------------------------

def test_rule_rejects_unknown_site_and_unsupported_kind():
    with pytest.raises(FaultError, match="unknown fault site"):
        FaultRule(site="cache.nope", kind="io-error")
    with pytest.raises(FaultError, match="does not support kind"):
        FaultRule(site="cache.read", kind="drop")


def test_rule_validates_trigger_fields():
    with pytest.raises(FaultError, match="probability"):
        FaultRule(site="cache.read", kind="io-error", probability=1.5)
    with pytest.raises(FaultError, match="after"):
        FaultRule(site="cache.read", kind="io-error", after=-1)
    with pytest.raises(FaultError, match="every"):
        FaultRule(site="cache.read", kind="io-error", every=0)
    with pytest.raises(FaultError, match="latency"):
        FaultRule(site="serve.read", kind="slow", latency=-0.1)
    with pytest.raises(FaultError, match="unknown match key"):
        FaultRule(site="cache.read", kind="io-error",
                  match={"hostname": "x"})


def test_plan_json_round_trip_preserves_everything():
    plan = FaultPlan(seed=77, description="round trip", rules=(
        FaultRule(site="cache.read", kind="torn", probability=0.25,
                  after=2, every=3, max_fires=4,
                  match={"key_prefix": "ab"}),
        FaultRule(site="serve.read", kind="slow", latency=0.5),
    ))
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_plan_load_and_malformed_inputs(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(FaultPlan(seed=5, rules=(
        FaultRule(site="cache.write", kind="io-error"),)).to_json())
    assert FaultPlan.load(path).seed == 5
    with pytest.raises(FaultError, match="cannot read"):
        FaultPlan.load(tmp_path / "missing.json")
    with pytest.raises(FaultError, match="not valid JSON"):
        FaultPlan.from_json("{nope")
    with pytest.raises(FaultError, match="unsupported fault plan schema"):
        FaultPlan.from_dict({"schema": "repro-faults/999", "faults": []})
    with pytest.raises(FaultError, match="unknown fault rule field"):
        FaultPlan.from_dict({"faults": [
            {"site": "cache.read", "kind": "torn", "color": "red"}]})


def test_with_seed_changes_only_the_seed():
    plan = FaultPlan(seed=1, rules=(
        FaultRule(site="cache.read", kind="corrupt"),), description="d")
    reseeded = plan.with_seed(9)
    assert reseeded.seed == 9
    assert reseeded.rules == plan.rules
    assert reseeded.description == "d"


def test_sites_registry_and_table_agree():
    rows = sites_table()
    assert {row[0] for row in rows} == set(SITES)
    for name, layer, kinds, _description in rows:
        assert SITES[name].layer == layer
        assert tuple(kinds.split(",")) == SITES[name].kinds


# -- injector trigger pipeline ----------------------------------------

def _decisions(injector: FaultInjector, site: str, count: int,
               ctx: dict | None = None) -> list[bool]:
    return [injector.decide(site, ctx or {}) is not None
            for _ in range(count)]


def test_after_every_and_max_fires_schedule():
    plan = FaultPlan(seed=0, rules=(
        FaultRule(site="cache.read", kind="io-error", after=2, every=3,
                  max_fires=2),))
    fired = _decisions(FaultInjector(plan), "cache.read", 12)
    # Occurrences 1-2 skipped, then every 3rd of the rest (3, 6, 9...)
    # capped at two firings.
    assert fired == [False, False, True, False, False, True,
                     False, False, False, False, False, False]


def test_probability_draws_are_deterministic_per_seed():
    plan = FaultPlan(seed=42, rules=(
        FaultRule(site="cache.read", kind="io-error", probability=0.5),))
    first = _decisions(FaultInjector(plan), "cache.read", 40)
    second = _decisions(FaultInjector(plan), "cache.read", 40)
    assert first == second
    assert any(first) and not all(first)
    reseeded = _decisions(FaultInjector(plan.with_seed(43)),
                          "cache.read", 40)
    assert reseeded != first  # a different seed draws differently


def test_match_predicate_gates_occurrence_counting():
    plan = FaultPlan(rules=(
        FaultRule(site="cache.read", kind="io-error", after=1,
                  match={"key_prefix": "aa"}),))
    injector = FaultInjector(plan)
    # Non-matching contexts are never counted toward `after`.
    assert injector.decide("cache.read", {"key": "bb00"}) is None
    assert injector.decide("cache.read", {"key": "aa00"}) is None  # after
    assert injector.decide("cache.read", {"key": "bb11"}) is None
    rule = injector.decide("cache.read", {"key": "aa11"})
    assert rule is not None and rule.kind == "io-error"


def test_kind_filter_prevents_sibling_hooks_consuming_occurrences():
    # One torn-payload rule at cache.read: the exception hook
    # (maybe_raise) probes the same site but cannot perform `torn`,
    # so its probes must not consume the rule's occurrences.
    plan = FaultPlan(rules=(
        FaultRule(site="cache.read", kind="torn", max_fires=1),))
    with injected(plan) as injector:
        hooks.maybe_raise("cache.read", key="k")  # must not consume
        assert injector.firing_count() == 0
        assert hooks.corrupt_text("cache.read", "payload", key="k") \
            != "payload"
        assert injector.firing_count() == 1


def test_firing_log_records_site_kind_rule_and_context():
    plan = FaultPlan(rules=(
        FaultRule(site="executor.job", kind="crash", max_fires=1),))
    with injected(plan) as injector:
        with pytest.raises(Exception):
            hooks.maybe_raise("executor.job", key="deadbeef",
                              workload="PageMine")
        (firing,) = injector.firings()
    assert firing.site == "executor.job"
    assert firing.kind == "crash"
    assert firing.rule == 0
    assert firing.occurrence == 1
    assert firing.workload == "PageMine"
    assert firing.to_dict()["key"] == "deadbeef"


# -- hooks ------------------------------------------------------------

def test_hooks_are_noops_when_disarmed():
    assert active() is None
    hooks.maybe_raise("cache.read", key="k")
    assert hooks.corrupt_text("cache.read", "text", key="k") == "text"
    assert hooks.delay_seconds("serve.read") == 0.0
    assert hooks.forced_timeout("executor.timeout") is False
    assert hooks.drop_connection("serve.connection") is False


def test_injected_io_error_is_an_oserror():
    assert issubclass(InjectedIOError, OSError)
    plan = FaultPlan(rules=(
        FaultRule(site="cache.write", kind="io-error"),))
    with injected(plan):
        with pytest.raises(InjectedIOError):
            hooks.maybe_raise("cache.write", key="k")


def test_value_hooks_report_their_faults():
    plan = FaultPlan(rules=(
        FaultRule(site="serve.read", kind="slow", latency=0.25),
        FaultRule(site="executor.timeout", kind="force", max_fires=1),
        FaultRule(site="serve.connection", kind="drop", max_fires=1),
    ))
    with injected(plan):
        assert hooks.delay_seconds("serve.read") == 0.25
        assert hooks.forced_timeout("executor.timeout") is True
        assert hooks.forced_timeout("executor.timeout") is False  # budget
        assert hooks.drop_connection("serve.connection") is True
        assert hooks.drop_connection("serve.connection") is False


def test_torn_payload_is_a_strict_prefix_and_corrupt_is_garbage():
    plan = FaultPlan(rules=(
        FaultRule(site="cache.read", kind="torn", max_fires=1),
        FaultRule(site="cache.read", kind="corrupt", max_fires=1),))
    text = '{"schema": 3, "result": {"cycles": 12}}'
    with injected(plan):
        torn = hooks.corrupt_text("cache.read", text, key="k")
        assert text.startswith(torn) and 0 < len(torn) < len(text)
        garbage = hooks.corrupt_text("cache.read", text, key="k")
        assert garbage != text and not garbage.startswith("{")
        # Budgets exhausted: payloads pass through untouched again.
        assert hooks.corrupt_text("cache.read", text, key="k") == text


# -- env propagation (worker processes) -------------------------------

def test_install_propagates_plan_through_environment(monkeypatch):
    plan = FaultPlan(seed=3, rules=(
        FaultRule(site="executor.job", kind="crash", max_fires=1),))
    with injected(plan, propagate_env=True):
        import json
        import os
        carried = FaultPlan.from_json(os.environ[PLAN_ENV])
        assert carried == plan
        assert json.loads(os.environ[PLAN_ENV])["seed"] == 3
    import os
    assert PLAN_ENV not in os.environ  # uninstall cleans up


def test_configure_from_env_arms_the_carried_plan(monkeypatch):
    plan = FaultPlan(seed=3, rules=(
        FaultRule(site="executor.job", kind="crash", max_fires=1),))
    monkeypatch.setenv(PLAN_ENV, plan.to_json())
    injector = configure_from_env()
    assert injector is not None and injector.plan == plan
    assert active() is injector


def test_configure_from_env_ignores_malformed_plans(monkeypatch):
    monkeypatch.setenv(PLAN_ENV, "{broken")
    assert configure_from_env() is None
    assert active() is None


def test_install_returns_and_uninstall_disarms():
    injector = FaultInjector(FaultPlan())
    assert install(injector) is injector
    assert active() is injector
    uninstall()
    assert active() is None


# -- backoff schedule -------------------------------------------------

def test_backoff_delay_is_deterministic_and_jittered():
    first = backoff_delay("key", 1)
    assert first == backoff_delay("key", 1)
    assert backoff_delay("other", 1) != first
    # Jitter keeps each delay within [0.5, 1.0) of the nominal value.
    for attempt in range(1, 8):
        nominal = min(DEFAULT_BACKOFF_CAP,
                      DEFAULT_BACKOFF_BASE * 2 ** (attempt - 1))
        delay = backoff_delay("key", attempt)
        assert 0.5 * nominal <= delay < nominal


def test_backoff_schedule_doubles_until_the_cap():
    schedule = backoff_schedule("key", budget=10, base=1.0, cap=8.0)
    assert len(schedule) == 10
    nominals = [min(8.0, 1.0 * 2 ** i) for i in range(10)]
    for delay, nominal in zip(schedule, nominals):
        assert 0.5 * nominal <= delay < nominal
    # The cap bounds every delay even as attempts keep doubling.
    assert max(schedule) < 8.0


def test_backoff_seed_changes_the_jitter():
    assert backoff_delay("key", 3, seed=0) != backoff_delay("key", 3, seed=1)
