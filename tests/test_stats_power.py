"""Unit tests for RunResult/Snapshot and the power model."""

from __future__ import annotations

import pytest

from repro.power import ActiveCorePowerModel
from repro.sim.stats import RunResult, Snapshot


def make_result(cycles=1000, busy=4000, spin=500, bus=250, retired=2000):
    return RunResult(
        cycles=cycles, busy_core_cycles=busy, spin_core_cycles=spin,
        bus_busy_cycles=bus, bus_transfers=bus // 32, l3_misses=10,
        l3_accesses=100, retired_instructions=retired, lock_acquisitions=3)


def test_power_is_average_active_cores():
    assert make_result().power == pytest.approx(4.0)


def test_power_zero_for_empty_interval():
    assert make_result(cycles=0, busy=0).power == 0.0


def test_bus_utilization_capped():
    r = make_result(cycles=100, bus=250)
    assert r.bus_utilization == 1.0


def test_ipc():
    assert make_result().ipc == pytest.approx(2.0)


def test_energy_is_active_core_cycles():
    assert make_result().energy == 4000.0


def test_results_add():
    a, b = make_result(), make_result(cycles=500, busy=1000)
    c = a + b
    assert c.cycles == 1500
    assert c.busy_core_cycles == 5000
    assert c.power == pytest.approx(5000 / 1500)


def test_between_subtracts_snapshots():
    s0 = Snapshot(cycles=100, busy_core_cycles=200, spin_core_cycles=0,
                  bus_busy_cycles=10, bus_transfers=1, l3_misses=2,
                  l3_accesses=20, retired_instructions=100,
                  lock_acquisitions=0)
    s1 = Snapshot(cycles=300, busy_core_cycles=700, spin_core_cycles=50,
                  bus_busy_cycles=74, bus_transfers=3, l3_misses=6,
                  l3_accesses=60, retired_instructions=500,
                  lock_acquisitions=4)
    r = RunResult.between(s0, s1)
    assert r.cycles == 200
    assert r.busy_core_cycles == 500
    assert r.bus_busy_cycles == 64
    assert r.lock_acquisitions == 4


def test_power_model_matches_paper_definition():
    model = ActiveCorePowerModel(num_cores=32, idle_fraction=0.0)
    assert model.power(make_result()) == pytest.approx(4.0)


def test_power_model_idle_floor():
    model = ActiveCorePowerModel(num_cores=32, idle_fraction=0.5)
    # 4 active + 0.5 * 28 idle = 18.
    assert model.power(make_result()) == pytest.approx(18.0)


def test_power_model_energy():
    model = ActiveCorePowerModel(num_cores=8)
    r = make_result()
    assert model.energy(r) == pytest.approx(model.power(r) * r.cycles)


def test_power_breakdown():
    model = ActiveCorePowerModel(num_cores=8, idle_fraction=0.0)
    b = model.breakdown(make_result())
    assert b.useful_cycles == 3500
    assert b.spin_cycles == 500
    assert b.idle_cycles == 0.0
    assert b.spin_fraction == pytest.approx(0.125)


def test_power_model_validation():
    with pytest.raises(ValueError):
        ActiveCorePowerModel(0)
    with pytest.raises(ValueError):
        ActiveCorePowerModel(8, idle_fraction=1.5)
