"""Tests for the SMT extension (paper Section 9).

"We assumed that only one thread executes per core ... However, the
conclusions derived in this paper are also applicable to CMP systems
with SMT-enabled cores."  These tests check the SMT machine model and
that FDT's conclusions indeed carry over.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.fdt.policies import FdtMode, FdtPolicy, StaticPolicy
from repro.fdt.runner import run_application
from repro.isa.ops import BarrierWait, Compute, Load, Lock, Unlock
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.workloads import get


def smt_config(cores: int = 8, smt: int = 2) -> MachineConfig:
    return MachineConfig.small(num_cores=cores).with_smt(smt)


def test_config_slots():
    cfg = MachineConfig.asplos08_baseline().with_smt(2)
    assert cfg.num_thread_slots == 64
    assert MachineConfig.asplos08_baseline().num_thread_slots == 32


def test_config_rejects_zero_contexts():
    with pytest.raises(ConfigError):
        MachineConfig(smt_threads=0)


def test_team_larger_than_cores_allowed_with_smt():
    m = Machine(smt_config(cores=4, smt=2))

    def factory(tid, team):
        yield Compute(100)

    region = m.run_parallel([factory] * 8, spawn_overhead=False)
    assert region.cycles > 0


def test_team_larger_than_slots_rejected():
    m = Machine(smt_config(cores=4, smt=2))

    def factory(tid, team):
        yield Compute(2)

    with pytest.raises(ConfigError):
        m.run_parallel([factory] * 9)


def test_agent_placement_fills_cores_first():
    m = Machine(smt_config(cores=4, smt=2))
    assert [m.core_of_agent(a) for a in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]
    assert [m.context_of_agent(a) for a in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]


def test_two_contexts_share_issue_bandwidth():
    """Two compute-bound threads on one core take ~2x one thread's time."""
    def factory(tid, team):
        yield Compute(100_000)

    alone = Machine(smt_config(cores=1, smt=2))
    r1 = alone.run_parallel([factory], spawn_overhead=False)

    shared = Machine(smt_config(cores=1, smt=2))
    r2 = shared.run_parallel([factory] * 2, spawn_overhead=False)
    assert r2.cycles == pytest.approx(2 * r1.cycles, rel=0.02)


def test_contexts_on_different_cores_do_not_interfere():
    def factory(tid, team):
        yield Compute(100_000)

    m = Machine(smt_config(cores=2, smt=2))
    region = m.run_parallel([factory] * 2, spawn_overhead=False)
    assert region.cycles == pytest.approx(50_000, rel=0.05)


def test_smt_hides_memory_latency():
    """Two memory-bound threads on one core overlap their misses, so
    SMT-2 beats one thread on throughput (unlike pure compute)."""
    def factory_range(lo, hi):
        def factory(tid, team):
            for line in range(lo, hi):
                yield Load((1 << 22) + line * 64)
        return factory

    single = Machine(smt_config(cores=1, smt=2))
    r1 = single.run_parallel([factory_range(0, 400)], spawn_overhead=False)

    dual = Machine(smt_config(cores=1, smt=2))
    r2 = dual.run_parallel(
        [factory_range(0, 200), factory_range(200, 400)],
        spawn_overhead=False)
    assert r2.cycles < 0.65 * r1.cycles


def test_power_counts_cores_not_contexts():
    """A core with both contexts busy is one active core, not two."""
    def factory(tid, team):
        yield Compute(100_000)

    m = Machine(smt_config(cores=2, smt=2))
    before = m.snapshot()
    m.run_parallel([factory] * 4, spawn_overhead=False)
    result = m.result_since(before)
    assert result.power == pytest.approx(2.0, rel=0.02)


def test_locks_serialize_across_contexts():
    order = []

    def factory(tid, team):
        yield Lock(0)
        order.append(("in", tid))
        yield Compute(500)
        order.append(("out", tid))
        yield Unlock(0)

    m = Machine(smt_config(cores=2, smt=2))
    m.run_parallel([factory] * 4, spawn_overhead=False)
    for i in range(0, len(order), 2):
        assert order[i][1] == order[i + 1][1]


def test_barrier_across_contexts():
    phases = []

    def factory(tid, team):
        yield Compute(100 * (tid + 1))
        phases.append(("before", tid))
        yield BarrierWait(0)
        phases.append(("after", tid))

    m = Machine(smt_config(cores=2, smt=2))
    m.run_parallel([factory] * 4, spawn_overhead=False)
    before = [i for i, p in enumerate(phases) if p[0] == "before"]
    after = [i for i, p in enumerate(phases) if p[0] == "after"]
    assert max(before) < min(after)


def test_fdt_conclusions_hold_with_smt():
    """Section 9's claim: on an SMT machine, FDT still curtails the
    CS-limited kernel to a few threads rather than using all 64 slots."""
    cfg = MachineConfig.asplos08_baseline().with_smt(2)
    res = run_application(get("PageMine").build(0.2),
                          FdtPolicy(FdtMode.SAT), cfg)
    assert res.kernel_infos[0].threads <= 8

    baseline = run_application(get("PageMine").build(0.2),
                               StaticPolicy(64), cfg)
    assert res.cycles < 0.6 * baseline.cycles
    assert res.power < 0.4 * baseline.power


def test_compact_placement_fills_contexts_first():
    from dataclasses import replace
    cfg = replace(smt_config(cores=4, smt=2), smt_placement="compact")
    m = Machine(cfg)
    assert [m.core_of_agent(a) for a in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]
    assert [m.context_of_agent(a) for a in range(8)] == [0, 1] * 4


def test_compact_placement_halves_active_cores():
    from dataclasses import replace

    def factory(tid, team):
        yield Compute(100_000)

    scatter = Machine(smt_config(cores=4, smt=2))
    s0 = scatter.snapshot()
    scatter.run_parallel([factory] * 4, spawn_overhead=False)
    r_scatter = scatter.result_since(s0)

    compact = Machine(replace(smt_config(cores=4, smt=2),
                              smt_placement="compact"))
    c0 = compact.snapshot()
    compact.run_parallel([factory] * 4, spawn_overhead=False)
    r_compact = compact.result_since(c0)

    # Compact: 4 threads on 2 cores (half the power, double the time).
    assert r_compact.power == pytest.approx(2.0, rel=0.05)
    assert r_scatter.power == pytest.approx(4.0, rel=0.05)
    assert r_compact.cycles == pytest.approx(2 * r_scatter.cycles, rel=0.05)


def test_invalid_placement_rejected():
    from dataclasses import replace
    with pytest.raises(ConfigError):
        replace(smt_config(), smt_placement="diagonal")
