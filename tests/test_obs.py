"""Tests for :mod:`repro.obs`: registry thread-safety, span tracing and
propagation, structured logging, the persistent run registry (including
process-restart round-trips and the ``repro obs`` CLI), the
drain-rate-derived ``Retry-After``, and the manifest/loadgen satellite
changes."""

from __future__ import annotations

import asyncio
import io
import json
import logging
import os
from concurrent.futures import ThreadPoolExecutor
from datetime import datetime

import pytest

from repro import cli
from repro.jobs import JobRunner, JobSpec, PolicySpec, ResultCache, WorkloadRef
from repro.jobs.manifest import ManifestEntry, RunManifest
from repro.obs import (
    configure_logging,
    default_registry,
    get_logger,
    host_fingerprint,
    reset_default_registry,
)
from repro.obs.log import configure_from_env
from repro.obs.registry import Counter, Histogram, MetricsRegistry
from repro.obs.runreg import RunRecord, RunRegistry
from repro.obs.tracing import (
    SpanRecorder,
    current_context,
    read_spans_jsonl,
    recorder,
    span,
    spans_jsonl,
    spans_to_perfetto,
    use_context,
)
from repro.serve.config import ServeConfig
from repro.serve.loadgen import LoadgenReport
from repro.serve.metrics import ServeMetrics
from repro.serve.pipeline import (
    RETRY_AFTER_MAX,
    RETRY_AFTER_MIN,
    RequestPipeline,
)
from repro.sim.config import MachineConfig


def _synthetic_spec(iterations: int = 8, threads: int = 2,
                    policy: str | None = None) -> JobSpec:
    pol = (PolicySpec(kind=policy) if policy is not None
           else PolicySpec.static(threads))
    return JobSpec(
        workload=WorkloadRef.synthetic(cs_fraction=0.2, bus_lines=2,
                                       iterations=iterations,
                                       compute_instr=200),
        policy=pol,
        config=MachineConfig.small())


# -- metrics registry -------------------------------------------------

def test_registry_concurrent_counters_exact_totals():
    registry = MetricsRegistry()
    counter = registry.counter("c_total", "c")
    labeled = registry.labeled_counter("l_total", "l", "kind")
    gauge = registry.gauge("g", "g")
    threads, per_thread = 8, 500

    def hammer(i: int) -> None:
        for _ in range(per_thread):
            counter.inc()
            labeled.inc("a" if i % 2 else "b")
            gauge.inc()
            gauge.dec()

    with ThreadPoolExecutor(max_workers=threads) as pool:
        list(pool.map(hammer, range(threads)))
    assert counter.value == threads * per_thread
    assert labeled.total == threads * per_thread
    assert labeled.value("a") == labeled.value("b") == \
        threads * per_thread // 2
    assert gauge.value == 0


def test_registry_concurrent_histogram_exact_totals():
    hist = Histogram("h", "h", buckets=(0.5, 1.5, 2.5))
    threads, per_thread = 8, 400

    def hammer(i: int) -> None:
        for j in range(per_thread):
            hist.observe(float(j % 3), exemplar=f"t{i}")

    with ThreadPoolExecutor(max_workers=threads) as pool:
        list(pool.map(hammer, range(threads)))
    total = threads * per_thread
    assert hist.count == total
    assert hist.sum == pytest.approx(
        threads * sum(j % 3 for j in range(per_thread)))
    rendered = "\n".join(hist.render())
    assert f'h_bucket{{le="+Inf"}} {total}' in rendered
    assert f'h_bucket{{le="2.5"}} {total}' in rendered
    assert hist.exemplars  # last writer per bucket retained


def test_registry_get_or_create_is_idempotent_and_kind_checked():
    registry = MetricsRegistry()
    a = registry.counter("x_total", "x")
    assert registry.counter("x_total", "ignored") is a
    with pytest.raises(ValueError, match="already registered as"):
        registry.gauge("x_total", "x")
    with pytest.raises(ValueError, match="already registered"):
        registry.register(Counter("x_total", "dup"))
    assert len(registry) == 1


def test_registry_render_orders_by_registration():
    registry = MetricsRegistry()
    registry.gauge("zz", "last registered first rendered? no")
    registry.counter("aa_total", "registered second")
    text = registry.render_prometheus()
    assert text.index("zz") < text.index("aa_total")
    assert text.endswith("\n")
    assert MetricsRegistry().render_prometheus() == ""


def test_reset_default_registry_gives_clean_slate():
    default_registry().counter("tmp_total", "t").inc()
    fresh = reset_default_registry()
    assert fresh is default_registry()
    assert fresh.get("tmp_total") is None


def test_serve_metrics_render_matches_pre_refactor_exposition():
    """The panel's /metrics text is byte-identical to the pre-obs
    renderer for the same updates (schema-compatibility guarantee)."""
    metrics = ServeMetrics()
    metrics.requests.inc("/v1/run")
    metrics.hits.inc()
    metrics.in_flight.set(2)
    metrics.latency.observe(0.002)
    text = metrics.render()
    lines = text.splitlines()
    # Families appear in the fixed pre-refactor order.
    type_lines = [ln.split() for ln in lines if ln.startswith("# TYPE")]
    assert [parts[2] for parts in type_lines] == [
        "repro_serve_requests_total", "repro_serve_responses_total",
        "repro_serve_cache_hits_total", "repro_serve_cache_misses_total",
        "repro_serve_coalesced_total", "repro_serve_shed_total",
        "repro_serve_timeouts_total", "repro_serve_failures_total",
        "repro_serve_in_flight", "repro_serve_request_seconds"]
    assert [parts[3] for parts in type_lines][:2] == ["counter", "counter"]
    assert 'repro_serve_requests_total{endpoint="/v1/run"} 1' in lines
    assert "repro_serve_in_flight 2" in lines
    assert text.endswith("\n")


# -- span tracing -----------------------------------------------------

def test_span_nesting_parent_ids_and_trace_id():
    recorder().clear()
    with span("outer", layer="test") as outer_ctx:
        assert current_context() is outer_ctx
        with span("inner") as inner_ctx:
            assert inner_ctx.trace_id == outer_ctx.trace_id
            assert inner_ctx.parent_id == outer_ctx.span_id
    assert current_context() is None
    spans = recorder().spans(trace_id=outer_ctx.trace_id)
    by_name = {s.name: s for s in spans}
    assert set(by_name) == {"outer", "inner"}
    assert by_name["inner"].parent_id == by_name["outer"].span_id
    assert by_name["outer"].parent_id == ""
    assert by_name["outer"].attrs == {"layer": "test"}
    assert by_name["outer"].end >= by_name["outer"].start


def test_span_propagates_across_thread_with_use_context():
    recorder().clear()
    with span("parent") as ctx:
        def worker():
            with use_context(ctx):
                with span("child"):
                    pass
        with ThreadPoolExecutor(max_workers=1) as pool:
            pool.submit(worker).result()
    child = recorder().spans(trace_id=ctx.trace_id, name="child")
    assert len(child) == 1
    assert child[0].parent_id == ctx.span_id


def test_span_does_not_leak_into_plain_executor_threads():
    with span("parent"):
        with ThreadPoolExecutor(max_workers=1) as pool:
            assert pool.submit(current_context).result() is None


def test_span_records_error_status_and_reraises():
    recorder().clear()
    with pytest.raises(ValueError):
        with span("boom") as ctx:
            raise ValueError("no")
    failed = recorder().spans(trace_id=ctx.trace_id, name="boom")
    assert failed[0].status == "error"


def test_span_jsonl_round_trip_and_sink(tmp_path):
    local = SpanRecorder()
    local.set_sink(tmp_path / "spans.jsonl")
    recorder().clear()
    with span("one", key="k"):
        pass
    spans = recorder().spans(name="one")
    for s in spans:
        local.record(s)
    parsed = read_spans_jsonl(tmp_path / "spans.jsonl")
    assert [s.to_dict() for s in parsed] == [s.to_dict() for s in spans]
    text = spans_jsonl(spans)
    assert json.loads(text.splitlines()[0])["name"] == "one"


def test_spans_to_perfetto_structure():
    recorder().clear()
    with span("outer") as ctx:
        with span("inner"):
            pass
    doc = spans_to_perfetto(recorder().spans(trace_id=ctx.trace_id))
    events = doc["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in complete} == {"outer", "inner"}
    assert all(e["ts"] >= 0 for e in complete)
    assert any(e["ph"] == "M" for e in events)
    assert spans_to_perfetto([]) == {
        "traceEvents": [], "displayTimeUnit": "ms",
        "otherData": {"tool": "repro.obs",
                      "time_unit": "1 viewer us = 1 host us"}}


# -- structured logging -----------------------------------------------

def test_json_logging_carries_trace_ids_and_extras():
    stream = io.StringIO()
    configure_logging(level="INFO", json_lines=True, stream=stream,
                      export_env=False)
    try:
        log = get_logger("serve")
        with span("req") as ctx:
            log.info("request", extra={"endpoint": "/v1/run", "status": 200})
        doc = json.loads(stream.getvalue().strip())
        assert doc["msg"] == "request"
        assert doc["logger"] == "repro.serve"
        assert doc["level"] == "INFO"
        assert doc["trace_id"] == ctx.trace_id
        assert doc["span_id"]
        assert doc["endpoint"] == "/v1/run"
        assert doc["status"] == 200
        datetime.fromisoformat(doc["ts"])  # parses
    finally:
        configure_logging(level="WARNING", export_env=False)


def test_human_logging_renders_extras():
    stream = io.StringIO()
    configure_logging(level="DEBUG", json_lines=False, stream=stream,
                      export_env=False)
    try:
        get_logger("jobs").debug("resolved", extra={"key": "abc"})
        line = stream.getvalue()
        assert "repro.jobs" in line and "resolved" in line
        assert "key=abc" in line
    finally:
        configure_logging(level="WARNING", export_env=False)


def test_configure_exports_env_and_workers_inherit(monkeypatch):
    monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)
    monkeypatch.delenv("REPRO_LOG_JSON", raising=False)
    assert configure_from_env() is None  # no-op when unset
    configure_logging(level="INFO", json_lines=True)
    assert os.environ["REPRO_LOG_LEVEL"] == "INFO"
    assert os.environ["REPRO_LOG_JSON"] == "1"
    root = configure_from_env()  # what a pool worker does
    assert root is not None
    assert root.level == logging.INFO
    configure_logging(level="WARNING", export_env=False)


# -- persistent run registry ------------------------------------------

def _record(key: str = "a" * 64, status: str = "computed",
            **overrides) -> RunRecord:
    base = dict(
        key=key, workload="synthetic", policy="static-2", status=status,
        backend="serial", wall_time=0.25,
        started_at="2026-08-07T00:00:00+00:00",
        finished_at="2026-08-07T00:00:01+00:00",
        schema_version=2, host=host_fingerprint(),
        trace_id="t1", trace_path="", error="",
        fdt=[{"kernel": "k", "threads": 4}])
    base.update(overrides)
    return RunRecord(**base)


def test_run_registry_round_trip_survives_restart(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.append(_record())
    registry.append(_record(status="hit", wall_time=0.0))
    # A fresh instance (a new process, as far as the JSONL file is
    # concerned) sees identical rows.
    reopened = RunRegistry(tmp_path)
    rows = reopened.records()
    assert [r.to_dict() for r in rows] == \
        [r.to_dict() for r in registry.records()]
    assert len(rows) == 2
    assert rows[0].fdt == [{"kernel": "k", "threads": 4}]
    assert rows[1].status == "hit"


def test_run_registry_get_prefix_tail_and_report(tmp_path):
    registry = RunRegistry(tmp_path)
    key1, key2 = "abc" + "0" * 61, "def" + "0" * 61
    registry.append(_record(key=key1))
    registry.append(_record(key=key2, status="failed", error="boom"))
    registry.append(_record(key=key1, status="hit"))
    assert registry.get("abc").status == "hit"  # latest row wins
    assert registry.get("nope") is None
    assert len(registry.history(key1)) == 2
    assert [r.key for r in registry.tail(2)] == [key2, key1]
    report = registry.report()
    assert report["rows"] == 3
    assert report["unique_keys"] == 2
    assert report["by_status"] == {"computed": 1, "failed": 1, "hit": 1}
    assert report["hit_rate"] == pytest.approx(0.5)
    assert report["computed_wall_time_total"] == pytest.approx(0.25)


def test_run_registry_skips_torn_lines(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.append(_record())
    with open(registry.path, "a", encoding="utf-8") as handle:
        handle.write('{"key": "torn...')  # crash mid-write
    assert len(RunRegistry(tmp_path).records()) == 1


def test_job_runner_writes_provenance_rows():
    reset_default_registry()
    cache = ResultCache(None)
    spec = _synthetic_spec()
    runner = JobRunner(cache=cache)
    runner.run_one(spec)
    runner.run_one(spec)  # memo hit
    rows = runner.run_registry.records()
    assert [r.status for r in rows] == ["computed", "hit"]
    row = rows[0]
    assert row.key == spec.key()
    assert row.workload == spec.workload.label
    assert row.schema_version == 2
    assert row.host == host_fingerprint()
    # Timestamps are ISO-8601 and ordered.
    assert datetime.fromisoformat(row.started_at) <= \
        datetime.fromisoformat(row.finished_at)
    assert row.fdt and row.fdt[0]["threads"] == 2
    # The registry rides under the cache root, so `repro obs` finds it.
    assert str(runner.run_registry.path).startswith(str(cache.root))
    # And the default-registry instruments moved with it.
    lookups = default_registry().get("repro_jobs_cache_total")
    assert lookups.value("hit") == 1
    assert lookups.value("miss") == 1
    resolutions = default_registry().get("repro_jobs_resolutions_total")
    assert resolutions.value("computed") == 1
    assert resolutions.value("hit") == 1


def test_fdt_job_records_decision_and_estimates():
    reset_default_registry()
    runner = JobRunner(cache=ResultCache(None))
    spec = _synthetic_spec(iterations=24, policy="fdt")
    runner.run_one(spec)
    row = runner.run_registry.get(spec.key())
    assert row is not None and row.status == "computed"
    assert row.fdt, "FDT decision missing from provenance row"
    decision = row.fdt[0]
    assert decision["threads"] >= 1
    assert "estimates" in decision
    # The decision also published to the shared registry.
    decisions = default_registry().get("repro_fdt_decisions_total")
    assert decisions is not None and decisions.total >= 1
    chosen = default_registry().get("repro_fdt_chosen_threads")
    assert chosen is not None and chosen.count >= 1
    assert default_registry().get("repro_fdt_p_fdt") is not None


def test_obs_cli_list_show_tail_report(capsys):
    runner = JobRunner(cache=ResultCache(None))
    spec = _synthetic_spec()
    runner.run_one(spec)
    key = spec.key()

    assert cli.main(["obs", "list"]) == 0
    out = capsys.readouterr().out
    assert key[:12] in out and "computed" in out

    assert cli.main(["obs", "show", key[:10]]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["key"] == key
    assert doc["status"] == "computed"
    assert doc["resolutions"] == 1
    assert doc["host"] == host_fingerprint()

    assert cli.main(["obs", "tail", "-n", "1", "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert len(rows) == 1 and rows[0]["key"] == key

    assert cli.main(["obs", "report", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["rows"] == 1
    assert report["by_status"] == {"computed": 1}

    assert cli.main(["obs", "show", "feedbeef"]) == 1
    assert "no run registered" in capsys.readouterr().err


def test_obs_cli_list_filters(capsys, tmp_path):
    registry = RunRegistry(tmp_path)
    registry.append(_record(key="a" * 64))
    registry.append(_record(key="b" * 64, status="failed"))
    assert cli.main(["obs", "list", "--dir", str(tmp_path),
                     "--status", "failed", "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert [r["status"] for r in rows] == ["failed"]


def test_bench_fingerprint_matches_obs_fingerprint():
    from repro.bench.harness import host_fingerprint as bench_fingerprint
    assert bench_fingerprint() == host_fingerprint()


# -- satellite: manifest timestamps -----------------------------------

def test_manifest_entries_carry_iso_timestamps():
    runner = JobRunner(cache=None)
    runner.run_one(_synthetic_spec())
    entry = runner.manifest.entries[-1]
    started = datetime.fromisoformat(entry.started_at)
    finished = datetime.fromisoformat(entry.finished_at)
    assert started.tzinfo is not None
    assert started <= finished
    doc = runner.manifest.to_dict()
    assert doc["started_at"] == entry.started_at
    assert doc["finished_at"] == entry.finished_at
    assert doc["entries"][-1]["started_at"] == entry.started_at
    # The counts contract is untouched (CI compares it exactly).
    assert set(doc["counts"]) == {"total", "hits", "computed", "failed",
                                  "timeouts"}


def test_manifest_timestamps_empty_for_unstamped_entries():
    manifest = RunManifest()
    manifest.record(ManifestEntry(key="k", workload="w", policy="p",
                                  status="hit", backend="memo"))
    assert manifest.started_at == ""
    assert manifest.to_dict()["finished_at"] == ""


# -- satellite: drain-rate Retry-After --------------------------------

def _pipeline(retry_after: float = 2.5,
              queue_depth: int = 4) -> RequestPipeline:
    config = ServeConfig(retry_after=retry_after, queue_depth=queue_depth)
    return RequestPipeline(config, ServeMetrics(), cache=None)


def test_retry_after_falls_back_to_config_before_observations():
    pipeline = _pipeline(retry_after=2.5)
    assert pipeline.retry_after_seconds() == 2.5


def test_retry_after_derives_from_drain_rate():
    async def scenario():
        pipeline = _pipeline()
        # 8 requests drained in 2s -> 4 rps; backlog of 1 -> 0.25s,
        # clamped up to the 1s floor.
        pipeline._observe_drain(8, 2.0)
        assert pipeline.retry_after_seconds() == RETRY_AFTER_MIN
        # A crawling pipeline clamps at the ceiling.
        crawling = _pipeline()
        crawling._observe_drain(1, 1000.0)
        assert crawling.retry_after_seconds() == RETRY_AFTER_MAX

    asyncio.run(scenario())


def test_retry_after_scales_with_backlog():
    async def scenario():
        pipeline = _pipeline(queue_depth=8)
        pipeline._observe_drain(2, 2.0)  # 1 rps
        baseline = pipeline.retry_after_seconds()
        for i in range(6):
            await pipeline._queue.put(object())
        assert pipeline.retry_after_seconds() > baseline
        assert pipeline.retry_after_seconds() == pytest.approx(7.0)

    asyncio.run(scenario())


def test_drain_rate_is_an_ema_not_last_sample():
    async def scenario():
        pipeline = _pipeline()
        pipeline._observe_drain(10, 1.0)   # 10 rps
        pipeline._observe_drain(1, 1.0)    # momentary 1 rps blip
        # EMA keeps most of the history: 0.25*1 + 0.75*10 = 7.75 rps.
        assert pipeline._drain_rate == pytest.approx(7.75)
        pipeline._observe_drain(0, 1.0)    # ignored
        pipeline._observe_drain(1, 0.0)    # ignored
        assert pipeline._drain_rate == pytest.approx(7.75)

    asyncio.run(scenario())


# -- satellite: loadgen --json counts ---------------------------------

def test_loadgen_report_json_counts():
    report = LoadgenReport(target_rps=10.0, duration=1.0, sent=10,
                           completed=8, errors=2, elapsed=1.25)
    report.status_codes = {"200": 5, "429": 2, "500": 1}
    report.outcomes = {"hit": 3, "coalesced": 1, "computed": 1}
    report.latencies = sorted([0.01] * 8)
    doc = report.to_dict()
    assert doc["hits"] == 4
    assert doc["shed"] == 2
    assert doc["error_5xx"] == 1
    assert doc["elapsed"] == pytest.approx(1.25)
    assert set(doc["latency_ms"]) == {"p50", "p95", "p99"}
    assert doc["completed"] == 8 and doc["errors"] == 2


# -- graceful degradation: unwritable sinks ---------------------------

def _blocked_path(tmp_path):
    """A path whose parent is a *file*, so any mkdir/open fails."""
    blocker = tmp_path / "blocker"
    blocker.write_text("in the way", encoding="utf-8")
    return blocker / "nested"


class _ListHandler(logging.Handler):
    """Collects records directly: the repro root logger does not
    propagate once configure_logging has run, so caplog can't see it."""

    def __init__(self) -> None:
        super().__init__(level=logging.WARNING)
        self.records: list[logging.LogRecord] = []

    def emit(self, record: logging.LogRecord) -> None:
        self.records.append(record)


@pytest.fixture()
def obs_warnings():
    logger = logging.getLogger("repro.obs")
    handler = _ListHandler()
    logger.addHandler(handler)
    previous = logger.level
    logger.setLevel(logging.WARNING)
    yield handler.records
    logger.removeHandler(handler)
    logger.setLevel(previous)


def test_run_registry_survives_unwritable_root(tmp_path, obs_warnings):
    counter = default_registry().labeled_counter(
        "repro_obs_degraded_total",
        "Telemetry writes dropped because a sink is unwritable.", "sink")
    before = counter.value("runreg")
    registry = RunRegistry(_blocked_path(tmp_path))
    registry.append(_record())
    registry.append(_record(status="hit"))
    assert registry.degraded is True
    assert registry.records() == []
    # Every drop is counted, but the warning fires once per episode.
    assert counter.value("runreg") == before + 2
    warnings = [r for r in obs_warnings
                if "run registry unwritable" in r.getMessage()]
    assert len(warnings) == 1


def test_run_registry_recovers_and_rewarns_per_episode(tmp_path, obs_warnings):
    import shutil

    blocker = tmp_path / "blocker"
    blocker.write_text("in the way", encoding="utf-8")
    registry = RunRegistry(blocker / "reg")
    registry.append(_record())
    assert registry.degraded is True
    blocker.unlink()  # the disk came back
    registry.append(_record(status="hit"))
    assert registry.degraded is False
    assert [r.status for r in registry.records()] == ["hit"]
    # A fresh outage warns again: once per episode, not per process.
    shutil.rmtree(blocker)
    blocker.write_text("back in the way", encoding="utf-8")
    registry.append(_record())
    assert registry.degraded is True
    warnings = [r for r in obs_warnings
                if "run registry unwritable" in r.getMessage()]
    assert len(warnings) == 2


def test_span_sink_degrades_but_ring_keeps_the_span(tmp_path, obs_warnings):
    from repro.obs.tracing import Span

    counter = default_registry().labeled_counter(
        "repro_obs_degraded_total",
        "Telemetry writes dropped because a sink is unwritable.", "sink")
    before = counter.value("spans")
    rec = SpanRecorder(capacity=8)
    rec.set_sink(_blocked_path(tmp_path))
    mine = Span(trace_id="t", span_id="s", parent_id="", name="degraded",
                start=0.0, end=1.0)
    rec.record(mine)
    rec.record(Span(trace_id="t", span_id="s2", parent_id="",
                    name="degraded2", start=1.0, end=2.0))
    assert rec.degraded is True
    assert counter.value("spans") == before + 2
    # The sink line was dropped but the in-memory ring kept the span.
    assert [s.name for s in rec.spans()] == ["degraded", "degraded2"]
    warnings = [r for r in obs_warnings
                if "span sink unwritable" in r.getMessage()]
    assert len(warnings) == 1


def test_span_sink_set_sink_resets_the_degraded_episode(tmp_path):
    from repro.obs.tracing import Span

    rec = SpanRecorder(capacity=8)
    rec.set_sink(_blocked_path(tmp_path))
    rec.record(Span(trace_id="t", span_id="s", parent_id="", name="n",
                    start=0.0, end=1.0))
    assert rec.degraded is True
    good = tmp_path / "spans.jsonl"
    rec.set_sink(good)
    assert rec.degraded is False
    rec.record(Span(trace_id="t", span_id="s2", parent_id="", name="n2",
                    start=1.0, end=2.0))
    assert rec.degraded is False
    assert len(read_spans_jsonl(good)) == 1
