"""Unit tests for the set-associative LRU cache."""

from __future__ import annotations

import pytest

from repro.sim.cache import SetAssocCache


def make_cache(size=1024, assoc=2, line=64):
    return SetAssocCache(size, assoc, line, name="test")


def test_geometry():
    c = make_cache(size=1024, assoc=2, line=64)  # 16 lines, 8 sets
    assert c.num_sets == 8
    assert c.assoc == 2


def test_invalid_line_size_rejected():
    with pytest.raises(ValueError):
        SetAssocCache(1024, 2, 48)


def test_size_not_divisible_rejected():
    with pytest.raises(ValueError):
        SetAssocCache(64 * 3, 2, 64)  # 3 lines cannot split into 2-way sets


def test_line_of_uses_line_bits():
    c = make_cache(line=64)
    assert c.line_of(0) == 0
    assert c.line_of(63) == 0
    assert c.line_of(64) == 1
    assert c.line_of(130) == 2


def test_miss_then_hit():
    c = make_cache()
    assert c.lookup(5) is None
    c.insert(5, "payload")
    assert c.lookup(5) == "payload"
    assert c.stats.misses == 1
    assert c.stats.hits == 1


def test_lru_victim_is_least_recently_used():
    c = make_cache(size=2 * 64, assoc=2, line=64)  # one set of 2 ways
    c.insert(0, "a")
    c.insert(1, "b")
    c.lookup(0)  # touch 0: 1 becomes LRU
    victim = c.insert(2, "c")
    assert victim == (1, "b")
    assert 0 in c and 2 in c and 1 not in c


def test_insert_existing_line_does_not_evict():
    c = make_cache(size=2 * 64, assoc=2, line=64)
    c.insert(0, "a")
    c.insert(1, "b")
    assert c.insert(0, "a2") is None
    assert c.peek(0) == "a2"
    assert len(c) == 2


def test_lookup_without_touch_keeps_lru_order():
    c = make_cache(size=2 * 64, assoc=2, line=64)
    c.insert(0, "a")
    c.insert(1, "b")
    c.lookup(0, touch=False)
    victim = c.insert(2, "c")
    assert victim == (0, "a")  # 0 stayed LRU despite the lookup


def test_peek_does_not_count_stats():
    c = make_cache()
    c.insert(7, True)
    c.peek(7)
    c.peek(8)
    assert c.stats.hits == 0
    assert c.stats.misses == 0


def test_update_replaces_payload_in_place():
    c = make_cache(size=2 * 64, assoc=2, line=64)
    c.insert(0, "a")
    c.insert(1, "b")
    assert c.update(0, "a2") is True
    # update must not promote: 0 is still the LRU victim.
    victim = c.insert(2, "c")
    assert victim == (0, "a2")


def test_update_missing_line_returns_false():
    c = make_cache()
    assert c.update(99, "x") is False


def test_invalidate_removes_line():
    c = make_cache()
    c.insert(3, "p")
    assert c.invalidate(3) == "p"
    assert 3 not in c
    assert c.stats.invalidations == 1
    assert c.invalidate(3) is None
    assert c.stats.invalidations == 1


def test_different_sets_do_not_conflict():
    c = make_cache(size=1024, assoc=2, line=64)  # 8 sets
    for line in range(8):  # one line per set
        c.insert(line, line)
    assert len(c) == 8
    assert c.stats.evictions == 0


def test_same_set_conflicts():
    c = make_cache(size=1024, assoc=2, line=64)  # 8 sets
    c.insert(0, "a")
    c.insert(8, "b")
    c.insert(16, "c")  # third line in set 0 evicts
    assert c.stats.evictions == 1
    assert len(c) == 2


def test_resident_lines_enumerates_contents():
    c = make_cache()
    for line in (1, 2, 3):
        c.insert(line, True)
    assert sorted(c.resident_lines()) == [1, 2, 3]


def test_clear_empties_but_keeps_stats():
    c = make_cache()
    c.insert(1, True)
    c.lookup(1)
    c.clear()
    assert len(c) == 0
    assert c.stats.hits == 1


def test_miss_rate():
    c = make_cache()
    assert c.stats.miss_rate == 0.0
    c.lookup(1)  # miss
    c.insert(1, True)
    c.lookup(1)  # hit
    assert c.stats.miss_rate == pytest.approx(0.5)


def test_non_power_of_two_set_count():
    c = SetAssocCache(3 * 64 * 2, 2, 64)  # 3 sets
    for line in range(9):
        c.insert(line, line)
    assert len(c) <= 6
