"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import _parse_thread_list, build_parser, main
from repro.errors import ReproError


def run_cli(capsys, *argv: str) -> tuple[int, str]:
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_list_shows_all_workloads(capsys):
    code, out = run_cli(capsys, "list")
    assert code == 0
    for name in ("PageMine", "ED", "MTwister", "SConv"):
        assert name in out


def test_machine_prints_table1(capsys):
    code, out = run_cli(capsys, "machine")
    assert code == 0
    assert "32-core CMP" in out
    assert "split-transaction" in out


def test_machine_with_knobs(capsys):
    code, out = run_cli(capsys, "machine", "--cores", "16",
                        "--bandwidth", "2")
    assert code == 0
    assert "16-core CMP" in out
    assert "one line per 16 cycles" in out


def test_run_static_policy(capsys):
    code, out = run_cli(capsys, "run", "EP", "--policy", "static",
                        "--threads", "4", "--scale", "0.25")
    assert code == 0
    assert "4 threads" in out
    assert "power" in out


def test_run_fdt_reports_estimates(capsys):
    code, out = run_cli(capsys, "run", "EP", "--policy", "sat",
                        "--scale", "0.25")
    assert code == 0
    assert "P_CS" in out
    assert "trained" in out


def test_run_unknown_workload_fails_cleanly(capsys):
    code = main(["run", "NoSuchWorkload"])
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown workload" in err


def test_sweep_prints_table_and_oracle(capsys):
    code, out = run_cli(capsys, "sweep", "EP", "--threads", "1,4",
                        "--scale", "0.25")
    assert code == 0
    assert "norm time" in out
    assert "oracle" in out


def test_sweep_rejects_bad_thread_list(capsys):
    code = main(["sweep", "EP", "--threads", "1,two"])
    assert code == 2


def test_figure_analytic(capsys):
    code, out = run_cli(capsys, "figure", "fig6")
    assert code == 0
    assert "Figure 6" in out


def test_figure_table2(capsys):
    code, out = run_cli(capsys, "figure", "table2")
    assert code == 0
    assert "Table 2" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parse_thread_list():
    assert _parse_thread_list("1,2,4") == (1, 2, 4)
    with pytest.raises(ReproError):
        _parse_thread_list("a,b")


def test_check_clean_workload_exits_zero(capsys):
    code, out = run_cli(capsys, "check", "EP", "--scale", "0.1")
    assert code == 0
    assert "OK - no findings" in out


def test_check_racy_fixture_exits_nonzero(capsys):
    code, out = run_cli(capsys, "check", "synthetic-racy")
    assert code == 1
    assert "FAIL" in out
    assert "empty-lockset" in out


def test_check_json_output_is_valid(capsys):
    import json
    code, out = run_cli(capsys, "check", "synthetic-racy", "--json")
    assert code == 1
    parsed = json.loads(out)
    assert parsed["clean"] is False
    assert parsed["counts"]["race"] >= 1


def test_check_unknown_workload_fails_cleanly(capsys):
    code = main(["check", "NoSuchWorkload"])
    assert code == 2
    assert "unknown workload" in capsys.readouterr().err


def test_run_with_smt_flag(capsys):
    code, out = run_cli(capsys, "run", "EP", "--policy", "sat",
                        "--scale", "0.25", "--smt", "2")
    assert code == 0


def test_run_writes_machine_report(capsys, tmp_path):
    report = tmp_path / "report.json"
    code, out = run_cli(capsys, "run", "EP", "--policy", "static",
                        "--threads", "2", "--scale", "0.25",
                        "--report", str(report))
    assert code == 0
    import json
    parsed = json.loads(report.read_text())
    assert parsed["cycles"] > 0
    assert parsed["locks"]["acquisitions"] > 0


def test_parse_thread_list_rejects_empty():
    with pytest.raises(ReproError, match="thread list is empty"):
        _parse_thread_list("")
    with pytest.raises(ReproError, match="thread list is empty"):
        _parse_thread_list(" , ,")


def test_sweep_empty_thread_list_fails_cleanly(capsys):
    code = main(["sweep", "EP", "--threads", ""])
    assert code == 2
    assert "thread list is empty" in capsys.readouterr().err


def test_sweep_warns_on_counts_over_cores(capsys):
    code = main(["sweep", "EP", "--threads", "1,2,64,128",
                 "--scale", "0.1"])
    assert code == 0
    err = capsys.readouterr().err
    assert "warning" in err
    assert "64,128" in err


def test_run_json_output_is_valid(capsys):
    import json
    code, out = run_cli(capsys, "run", "EP", "--policy", "static",
                        "--threads", "2", "--scale", "0.1", "--json")
    assert code == 0
    parsed = json.loads(out)
    assert parsed["app_name"] == "EP"
    assert parsed["policy_name"] == "static-2"
    assert parsed["cycles"] > 0
    assert parsed["power"] > 0


def test_sweep_json_output_is_valid(capsys):
    import json
    code, out = run_cli(capsys, "sweep", "EP", "--threads", "1,2",
                        "--scale", "0.1", "--json")
    assert code == 0
    parsed = json.loads(out)
    assert [p["threads"] for p in parsed["points"]] == [1, 2]
    assert parsed["best_threads"] in (1, 2)
    assert parsed["oracle_threads"] in (1, 2)


def test_batch_cold_then_warm_manifest_counts(capsys, tmp_path):
    import json
    cache = tmp_path / "cache"
    argv = ["batch", "EP", "--threads", "1,2", "--policies", "static,fdt",
            "--scale", "0.1", "--cache-dir", str(cache)]

    cold_manifest = tmp_path / "cold.json"
    code, out = run_cli(capsys, *argv, "--manifest", str(cold_manifest))
    assert code == 0
    assert "static-1" in out and "fdt" in out
    cold = json.loads(cold_manifest.read_text())
    assert cold["counts"] == {"total": 3, "hits": 0, "computed": 3,
                              "failed": 0, "timeouts": 0}

    warm_manifest = tmp_path / "warm.json"
    code, out = run_cli(capsys, *argv, "--json",
                        "--manifest", str(warm_manifest))
    assert code == 0
    parsed = json.loads(out)
    assert parsed["counts"] == {"total": 3, "hits": 3, "computed": 0,
                                "failed": 0, "timeouts": 0}
    assert all(j["status"] == "hit" for j in parsed["jobs"])
    assert all(j["cycles"] > 0 for j in parsed["jobs"])


def test_batch_rejects_unknown_policy(capsys):
    code = main(["batch", "EP", "--policies", "oracle"])
    assert code == 2
    assert "unknown policy" in capsys.readouterr().err


def test_batch_no_cache_always_computes(capsys, tmp_path):
    import json
    manifest = tmp_path / "m.json"
    code, _ = run_cli(capsys, "batch", "EP", "--threads", "1",
                      "--policies", "static", "--scale", "0.1",
                      "--no-cache", "--manifest", str(manifest))
    assert code == 0
    counts = json.loads(manifest.read_text())["counts"]
    assert counts == {"total": 1, "hits": 0, "computed": 1,
                      "failed": 0, "timeouts": 0}


def test_check_static_only_detects_seeded_deadlock(capsys):
    code, out = run_cli(capsys, "check", "static-deadlock", "--static-only")
    assert code == 1
    assert "static-lock-order-cycle" in out
    assert "static prior" in out


def test_check_static_json_reports_prior_agreement(capsys):
    code, out = run_cli(capsys, "check", "EP", "--static", "--json",
                        "--scale", "0.2")
    assert code == 0
    payload = json.loads(out)
    assert payload["clean"] is True
    assert payload["static"]["clean"] is True
    assert "ep" in payload["static"]["priors"]
    agreement = payload["agreement"]["ep"]
    assert {"static_cs_fraction", "measured_cs_fraction",
            "within_tolerance"} <= set(agreement)


def test_check_static_only_json_top_level_is_static_report(capsys):
    code, out = run_cli(capsys, "check", "static-barrier-mismatch",
                        "--static-only", "--json")
    assert code == 1
    payload = json.loads(out)
    assert payload["workload"] == "static-barrier-mismatch"
    assert "static-barrier-count-mismatch" in payload["counts"]


def test_check_requires_workload_or_all(capsys):
    code = main(["check"])
    assert code == 2
    assert "workload name or --all" in capsys.readouterr().err


def test_check_static_fixture_dynamic_mode_still_resolves(capsys):
    # The static fixtures are valid dynamic workloads too: the latent
    # deadlock is staggered to dodge the FIFO grant order, but the
    # dynamic lock-order analysis still sees the cycle.
    code, out = run_cli(capsys, "check", "static-counter-in-cs")
    assert code in (0, 1)
    assert "static-counter-in-cs" in out


def test_batch_accepts_preflight_flag(capsys):
    code, out = run_cli(capsys, "batch", "EP", "--threads", "2",
                        "--scale", "0.1", "--no-cache", "--preflight")
    assert code == 0
