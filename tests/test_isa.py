"""Unit tests for the IR ops and program helpers."""

from __future__ import annotations

import pytest

from repro.errors import ProgramError
from repro.isa.ops import (
    BarrierWait,
    Branch,
    Compute,
    CounterKind,
    Load,
    Lock,
    ReadCounter,
    Store,
    Unlock,
)
from repro.isa.program import instruction_count, validate_program


def test_compute_rejects_negative():
    with pytest.raises(ValueError):
        Compute(-1)


def test_ops_are_immutable():
    op = Load(0x1000)
    with pytest.raises(AttributeError):
        op.addr = 0x2000  # type: ignore[misc]


def test_ops_compare_by_value():
    assert Load(8) == Load(8)
    assert Store(8) != Store(16)
    assert Compute(4) == Compute(4)


def test_validate_accepts_well_formed_program():
    ops = [Compute(10), Load(0), Lock(1), Store(64), Unlock(1),
           BarrierWait(0), Branch(0x40, True),
           ReadCounter(CounterKind.CYCLES)]
    assert validate_program(ops) == ops


def test_validate_rejects_unlock_without_lock():
    with pytest.raises(ProgramError):
        validate_program([Unlock(0)])


def test_validate_rejects_mismatched_unlock():
    with pytest.raises(ProgramError):
        validate_program([Lock(0), Lock(1), Unlock(0), Unlock(1)])


def test_validate_accepts_nested_locks():
    ops = [Lock(0), Lock(1), Unlock(1), Unlock(0)]
    assert validate_program(ops) == ops


def test_validate_rejects_leaked_lock():
    with pytest.raises(ProgramError):
        validate_program([Lock(3)])


def test_validate_rejects_foreign_objects():
    with pytest.raises(ProgramError):
        validate_program([Compute(1), "not-an-op"])  # type: ignore[list-item]


def test_instruction_count_weights_compute():
    ops = [Compute(100), Load(0), Store(0), Branch(0, True)]
    assert instruction_count(ops) == 103


def test_instruction_count_empty():
    assert instruction_count([]) == 0


def test_counter_kinds_are_distinct():
    assert len({k.value for k in CounterKind}) == len(list(CounterKind))


def test_validate_rejects_negative_branch_pc():
    with pytest.raises(ProgramError, match="negative pc -5"):
        validate_program([Compute(1), Branch(-5, True)])


def test_validate_accepts_zero_branch_pc():
    ops = [Branch(0, False)]
    assert validate_program(ops) == ops


def test_validate_mismatched_unlock_names_held_locks():
    with pytest.raises(ProgramError) as excinfo:
        validate_program([Lock(3), Lock(7), Unlock(3)])
    message = str(excinfo.value)
    assert "releases lock 3" in message
    assert "innermost held lock is 7" in message
    assert "[3, 7]" in message
