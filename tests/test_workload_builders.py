"""Contract tests every registered workload builder must satisfy."""

from __future__ import annotations

import pytest

from repro.fdt.runner import Application
from repro.isa.program import validate_program
from repro.workloads import all_specs

SPECS = {s.name: s for s in all_specs()}


@pytest.mark.parametrize("name", sorted(SPECS))
def test_build_returns_fresh_application(name):
    spec = SPECS[name]
    a = spec.build(0.1)
    b = spec.build(0.1)
    assert isinstance(a, Application)
    assert a is not b
    assert a.kernels is not b.kernels
    # Kernels are fresh too (they carry mutable computed state).
    assert a.kernels[0] is not b.kernels[0]


@pytest.mark.parametrize("name", sorted(SPECS))
def test_small_scale_still_has_trainable_loop(name):
    app = SPECS[name].build(0.05)
    for kernel in app.kernels:
        # FDT needs at least a couple of iterations beyond training.
        assert kernel.total_iterations >= 10, kernel.name


@pytest.mark.parametrize("name", sorted(SPECS))
def test_first_iteration_is_well_formed(name):
    app = SPECS[name].build(0.1)
    for kernel in app.kernels:
        ops = validate_program(kernel.serial_iteration(0))
        assert ops, f"{kernel.name} iteration 0 is empty"


@pytest.mark.parametrize("name", sorted(SPECS))
def test_last_iteration_is_well_formed(name):
    app = SPECS[name].build(0.1)
    for kernel in app.kernels:
        last = kernel.total_iterations - 1
        validate_program(kernel.serial_iteration(last))


@pytest.mark.parametrize("name", sorted(SPECS))
def test_scale_monotone_in_iterations(name):
    small = SPECS[name].build(0.1)
    large = SPECS[name].build(1.0)
    small_total = sum(k.total_iterations for k in small.kernels)
    large_total = sum(k.total_iterations for k in large.kernels)
    assert large_total >= small_total


@pytest.mark.parametrize("name", sorted(SPECS))
def test_factories_match_team_size(name):
    app = SPECS[name].build(0.1)
    for kernel in app.kernels:
        factories = kernel.factories(range(kernel.total_iterations), 3)
        assert len(factories) == 3


@pytest.mark.parametrize("name", sorted(SPECS))
def test_deterministic_op_streams(name):
    a = SPECS[name].build(0.1)
    b = SPECS[name].build(0.1)
    for ka, kb in zip(a.kernels, b.kernels):
        ops_a = list(ka.serial_iteration(0))
        ops_b = list(kb.serial_iteration(0))
        assert len(ops_a) == len(ops_b)
        for oa, ob in zip(ops_a, ops_b):
            assert type(oa) is type(ob)
            assert oa == ob
