"""Property-based tests for the lock and barrier managers (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.barriers import BarrierManager
from repro.runtime.locks import LockManager
from repro.sim.config import MachineConfig
from repro.sim.ring import Ring


def managers(num_agents: int = 8):
    cfg = MachineConfig.small(num_cores=8)
    ring = Ring(cfg.num_cores + cfg.l3_banks)
    nodes = list(range(num_agents))
    return (LockManager(cfg, ring, nodes), BarrierManager(cfg, ring, nodes))


@given(order=st.permutations(range(6)))
@settings(max_examples=60)
def test_lock_grants_follow_fifo_arrival_order(order):
    locks, _ = managers()
    first = order[0]
    grant0 = locks.acquire(0, first, now=0)
    assert grant0 is not None
    for i, agent in enumerate(order[1:], start=1):
        assert locks.acquire(0, agent, now=i) is None
    served = [first]
    now = grant0 + 10
    while locks.waiters(0):
        handoff = locks.release(0, served[-1], now)
        assert handoff is not None
        nxt, grant = handoff
        served.append(nxt)
        now = grant + 10
    locks.release(0, served[-1], now)
    assert served == list(order)


@given(acquires=st.lists(st.integers(0, 3), min_size=1, max_size=40))
@settings(max_examples=60)
def test_at_most_one_holder_per_lock(acquires):
    """Random acquire storms with immediate releases keep the invariant:
    one holder per lock, grants strictly after requests."""
    locks, _ = managers()
    now = 0
    for agent in acquires:
        grant = locks.acquire(0, agent, now)
        if grant is None:
            # Drain the queue: the holder releases until this agent runs.
            holder = locks.holder(0)
            while locks.holder(0) != agent:
                handoff = locks.release(0, locks.holder(0), now + 5)
                assert handoff is not None
                now = handoff[1]
            grant = now
        assert grant >= 0
        handoff = locks.release(0, agent, grant + 3)
        now = handoff[1] if handoff else grant + 3
        # after release-with-handoff the next holder is set; release them
        while locks.holder(0) is not None:
            handoff = locks.release(0, locks.holder(0), now + 1)
            now = handoff[1] if handoff else now + 1
    assert locks.holder(0) is None


@given(team=st.integers(2, 8), arrival_gaps=st.lists(
    st.integers(0, 100), min_size=8, max_size=8))
@settings(max_examples=60)
def test_barrier_releases_whole_team_after_last_arrival(team, arrival_gaps):
    _, barriers = managers()
    now = 0
    releases = None
    for agent in range(team):
        now += arrival_gaps[agent]
        releases = barriers.arrive(0, agent, team, now)
        if agent < team - 1:
            assert releases is None
    assert releases is not None
    assert {a for a, _t in releases} == set(range(team))
    # No one is released before the last arrival.
    assert all(t >= now for _a, t in releases)


@given(team=st.integers(1, 8), generations=st.integers(1, 5))
@settings(max_examples=40)
def test_barrier_generations_are_independent(team, generations):
    _, barriers = managers()
    now = 0
    for g in range(generations):
        for agent in range(team):
            out = barriers.arrive(7, agent, team, now + agent)
            if agent == team - 1:
                assert out is not None
            else:
                assert out is None
        now += 1000
    assert barriers.stats.episodes == generations
    assert barriers.pending(7) == 0
