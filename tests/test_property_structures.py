"""Property-based tests for core data structures (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.parallel import static_chunks
from repro.sim.bus import ReservationTimeline
from repro.sim.cache import SetAssocCache
from repro.sim.engine import EventQueue
from repro.sim.ring import Ring


# -- static_chunks --------------------------------------------------------------

@given(total=st.integers(0, 10_000), threads=st.integers(1, 64),
       start=st.integers(0, 1000))
def test_chunks_partition_iteration_space(total, threads, start):
    chunks = static_chunks(total, threads, start)
    assert len(chunks) == threads
    covered = [i for c in chunks for i in c]
    assert covered == list(range(start, start + total))


@given(total=st.integers(0, 10_000), threads=st.integers(1, 64))
def test_chunk_sizes_balanced(total, threads):
    sizes = [len(c) for c in static_chunks(total, threads)]
    assert max(sizes) - min(sizes) <= 1


# -- cache LRU --------------------------------------------------------------------

@given(lines=st.lists(st.integers(0, 63), min_size=1, max_size=300))
@settings(max_examples=100)
def test_cache_capacity_invariant(lines):
    c = SetAssocCache(size_bytes=8 * 64, assoc=2, line_bytes=64)
    for line in lines:
        c.insert(line, line)
    assert len(c) <= 8
    for s in c._sets:
        assert len(s) <= 2


@given(lines=st.lists(st.integers(0, 63), min_size=1, max_size=300))
@settings(max_examples=100)
def test_cache_most_recent_insert_always_resident(lines):
    c = SetAssocCache(size_bytes=8 * 64, assoc=2, line_bytes=64)
    for line in lines:
        c.insert(line, line)
        assert line in c
        assert c.peek(line) == line


@given(lines=st.lists(st.integers(0, 31), min_size=2, max_size=100))
@settings(max_examples=100)
def test_cache_hits_plus_misses_equals_lookups(lines):
    c = SetAssocCache(size_bytes=16 * 64, assoc=4, line_bytes=64)
    for line in lines:
        if c.lookup(line) is None:
            c.insert(line, True)
    assert c.stats.accesses == len(lines)


# -- reservation timeline ------------------------------------------------------------

@given(requests=st.lists(
    st.tuples(st.integers(0, 10_000), st.integers(1, 64)),
    min_size=1, max_size=200))
@settings(max_examples=100)
def test_timeline_reservations_disjoint_and_after_ready(requests):
    tl = ReservationTimeline()
    booked = []
    for ready, duration in requests:
        start = tl.reserve(ready, duration)
        assert start >= ready
        booked.append((start, start + duration))
    booked.sort()
    for (s1, e1), (s2, e2) in zip(booked, booked[1:]):
        assert e1 <= s2, "overlapping bus reservations"


@given(requests=st.lists(st.integers(0, 1000), min_size=1, max_size=100))
@settings(max_examples=100)
def test_timeline_work_conserving_for_sorted_arrivals(requests):
    """With non-decreasing ready times the bus never idles while work
    is waiting: total busy time ends exactly at sum of durations past
    the last gap."""
    tl = ReservationTimeline()
    now = 0
    last_end = 0
    for gap in sorted(requests):
        start = tl.reserve(gap, 10)
        assert start <= max(gap, last_end)
        last_end = max(last_end, start + 10)
        now = gap


# -- ring --------------------------------------------------------------------------------

@given(n=st.integers(2, 128), a=st.integers(0, 127), b=st.integers(0, 127))
def test_ring_metric_properties(n, a, b):
    a, b = a % n, b % n
    r = Ring(n)
    assert r.hops(a, b) == r.hops(b, a)
    assert r.hops(a, a) == 0
    assert r.hops(a, b) <= n // 2


@given(n=st.integers(2, 64), a=st.integers(0, 63), b=st.integers(0, 63),
       c=st.integers(0, 63))
def test_ring_triangle_inequality(n, a, b, c):
    a, b, c = a % n, b % n, c % n
    r = Ring(n)
    assert r.hops(a, c) <= r.hops(a, b) + r.hops(b, c)


# -- event queue ---------------------------------------------------------------------------

@given(times=st.lists(st.integers(0, 10_000), min_size=1, max_size=200))
@settings(max_examples=100)
def test_events_always_fire_in_nondecreasing_time_order(times):
    q = EventQueue()
    fired = []
    for t in times:
        q.schedule(t, lambda t=t: fired.append(t))
    q.run()
    assert fired == sorted(times)
    assert q.now == max(times)
