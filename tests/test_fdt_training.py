"""Unit tests for FDT training: instrumentation and termination rules."""

from __future__ import annotations

from typing import Iterator

import pytest

from repro.errors import TrainingError
from repro.fdt.kernel import DataParallelKernel
from repro.fdt.training import (
    TrainingConfig,
    TrainingLog,
    TrainingSample,
    instrumented_training_program,
)
from repro.isa.ops import Compute, Lock, Op, Unlock
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine


def make_log(total=1000, cores=32, **cfg) -> TrainingLog:
    return TrainingLog(config=TrainingConfig(**cfg), total_iterations=total,
                       num_cores=cores)


def sample(i=0, total=1000, cs=20, bus=0) -> TrainingSample:
    return TrainingSample(iteration=i, total_cycles=total, cs_cycles=cs,
                          bus_busy_cycles=bus)


# -- TrainingSample -----------------------------------------------------------

def test_sample_nocs_and_ratio():
    s = sample(total=1000, cs=200)
    assert s.nocs_cycles == 800
    assert s.cs_ratio == pytest.approx(0.25)


def test_sample_all_cs_has_infinite_ratio():
    s = sample(total=100, cs=100)
    assert s.cs_ratio == float("inf")


def test_sample_bus_utilization():
    s = sample(total=1000, bus=250)
    assert s.bus_utilization == pytest.approx(0.25)


# -- termination rules --------------------------------------------------------

def test_stability_rule_stops_sat_only_training():
    log = make_log(need_bat=False)
    assert log.record(sample(0)) is False
    assert log.record(sample(1)) is False
    assert log.record(sample(2)) is True  # three stable ratios
    assert log.stop_reason == "measurements-stable"


def test_unstable_ratios_keep_training():
    log = make_log(need_bat=False)
    log.record(sample(0, cs=20))
    log.record(sample(1, cs=60))  # ratio jumps 3x
    assert log.record(sample(2, cs=20)) is False


def test_iteration_cap_stops_training():
    log = make_log(total=1000, need_bat=False, min_iterations=1,
                   max_iteration_fraction=0.003)
    for i in range(3):
        stopped = log.record(sample(i, cs=20 + 10 * i))
    assert stopped is True
    assert log.stop_reason == "iteration-cap"


def test_cap_never_exceeds_half_the_loop():
    cfg = TrainingConfig(min_iterations=50)
    assert cfg.max_training_iterations(20) == 10


def test_cap_is_one_percent_at_paper_scale():
    cfg = TrainingConfig()
    assert cfg.max_training_iterations(10_000) == 100


def test_bat_early_out_when_bus_cannot_saturate():
    # BU * cores << 1 and enough cycles observed.
    log = make_log(total=100_000, cores=32, need_sat=False)
    log.record(sample(0, total=6000, bus=10))
    assert log.record(sample(1, total=6000, bus=10)) is True
    assert log.stop_reason == "measurements-stable"


def test_bat_keeps_training_when_saturable():
    log = make_log(total=100_000, cores=32, need_sat=False)
    log.record(sample(0, total=6000, bus=900))  # 15% utilization
    assert log.record(sample(1, total=6000, bus=900)) is False


def test_bat_needs_minimum_cycles_before_early_out():
    log = make_log(total=100_000, cores=32, need_sat=False)
    assert log.record(sample(0, total=500, bus=0)) is False  # < 10k cycles


def test_combined_needs_both_rules():
    log = make_log(total=100_000, cores=32)
    # SAT stable immediately, but the bus looks saturable -> continue.
    for i in range(5):
        assert log.record(sample(i, total=6000, cs=0, bus=900)) is False


# -- aggregates ----------------------------------------------------------------

def test_means():
    log = make_log()
    log.record(sample(0, total=1000, cs=100, bus=50))
    log.record(sample(1, total=2000, cs=300, bus=150))
    assert log.mean_cs_cycles() == pytest.approx(200)
    assert log.mean_nocs_cycles() == pytest.approx(1300)
    assert log.mean_bus_utilization() == pytest.approx(200 / 3000)


def test_empty_log_raises():
    log = make_log()
    with pytest.raises(TrainingError):
        log.mean_cs_cycles()


# -- the instrumented program (in the simulator) ------------------------------

class _CsKernel(DataParallelKernel):
    """Deterministic kernel: 500-instr parallel part, 100-instr CS."""

    name = "unit-cs"

    @property
    def total_iterations(self) -> int:
        return 100

    def serial_iteration(self, i: int) -> Iterator[Op]:
        yield Compute(500)
        yield Lock(0)
        yield Compute(100)
        yield Unlock(0)


def test_instrumentation_measures_cs_share():
    machine = Machine(MachineConfig.small())
    kernel = _CsKernel()
    log = TrainingLog(config=TrainingConfig(need_bat=False),
                      total_iterations=kernel.total_iterations,
                      num_cores=machine.config.num_cores)
    machine.run_serial(
        lambda tid, team: instrumented_training_program(
            kernel, range(kernel.total_iterations), log))
    assert log.trained_iterations >= 3
    # 100 of 600 instructions inside the CS; counter reads and the lock
    # itself add a little, so allow a band around 1/6.
    for s in log.samples:
        assert 0.12 < s.cs_cycles / s.total_cycles < 0.30


def test_instrumentation_handles_nested_locks():
    class Nested(_CsKernel):
        def serial_iteration(self, i: int) -> Iterator[Op]:
            yield Compute(500)
            yield Lock(0)
            yield Lock(1)
            yield Compute(100)
            yield Unlock(1)
            yield Unlock(0)

    machine = Machine(MachineConfig.small())
    kernel = Nested()
    log = TrainingLog(config=TrainingConfig(need_bat=False),
                      total_iterations=100, num_cores=8)
    machine.run_serial(
        lambda tid, team: instrumented_training_program(
            kernel, range(100), log))
    # Only the outermost lock pair is timed (no double counting).
    for s in log.samples:
        assert s.cs_cycles < s.total_cycles


def test_training_stops_midway_leaves_remaining_iterations():
    machine = Machine(MachineConfig.small())
    kernel = _CsKernel()
    log = TrainingLog(config=TrainingConfig(need_bat=False),
                      total_iterations=100, num_cores=8)
    machine.run_serial(
        lambda tid, team: instrumented_training_program(
            kernel, range(100), log))
    assert log.trained_iterations < 100
