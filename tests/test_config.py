"""Unit tests for MachineConfig (Table 1) validation and derivations."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.sim.config import MachineConfig


def test_baseline_matches_table1():
    c = MachineConfig.asplos08_baseline()
    assert c.num_cores == 32
    assert c.issue_width == 2
    assert c.pipeline_depth == 5
    assert c.l1_bytes == 8 * 1024
    assert c.l2_bytes == 64 * 1024
    assert c.l2_assoc == 4
    assert c.l3_bytes == 8 * 1024 * 1024
    assert c.l3_assoc == 8
    assert c.l3_banks == 8
    assert c.l3_latency == 20
    assert c.line_bytes == 64
    assert c.cpu_bus_ratio == 4
    assert c.bus_latency == 40
    assert c.dram_banks == 32


def test_peak_bandwidth_one_line_per_32_cycles():
    c = MachineConfig.asplos08_baseline()
    assert c.bus_cycles_per_line == 32
    assert c.peak_bus_lines_per_kcycle == pytest.approx(31.25)


def test_gshare_entries_from_bytes():
    assert MachineConfig.asplos08_baseline().gshare_entries == 16384


def test_config_is_hashable_and_comparable():
    a = MachineConfig.asplos08_baseline()
    b = MachineConfig.asplos08_baseline()
    assert a == b
    assert hash(a) == hash(b)
    assert a != a.with_cores(16)


def test_with_bandwidth_half_and_double():
    base = MachineConfig.asplos08_baseline()
    assert base.with_bandwidth(0.5).bus_cycles_per_line == 64
    assert base.with_bandwidth(2.0).bus_cycles_per_line == 16


def test_with_bandwidth_rejects_nonpositive():
    with pytest.raises(ConfigError):
        MachineConfig.asplos08_baseline().with_bandwidth(0)


def test_with_bandwidth_clamps_ratio_at_one():
    cfg = MachineConfig.asplos08_baseline().with_bandwidth(100.0)
    assert cfg.cpu_bus_ratio == 1


def test_with_cores():
    assert MachineConfig.asplos08_baseline().with_cores(8).num_cores == 8


def test_invalid_core_count_rejected():
    with pytest.raises(ConfigError):
        MachineConfig(num_cores=0)


def test_invalid_line_bytes_rejected():
    with pytest.raises(ConfigError):
        MachineConfig(line_bytes=48)


def test_cache_size_must_divide_into_sets():
    with pytest.raises(ConfigError):
        MachineConfig(l2_bytes=64 * 1024 + 64, l2_assoc=4)


def test_banks_must_be_power_of_two():
    with pytest.raises(ConfigError):
        MachineConfig(l3_banks=6)
    with pytest.raises(ConfigError):
        MachineConfig(dram_banks=12)


def test_small_config_is_valid():
    c = MachineConfig.small()
    assert c.num_cores == 8
    assert c.l3_bytes < MachineConfig.asplos08_baseline().l3_bytes
