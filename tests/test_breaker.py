"""Circuit-breaker tests: the state machine alone, then wired into the
request pipeline (trip on consecutive failed batches, fast-shed while
open, drain-signal probe, forced clock-free timeouts)."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import JobError
from repro.faults import FaultPlan, FaultRule, injected, uninstall
from repro.jobs import JobResolution, JobSpec, PolicySpec, ResultCache, WorkloadRef
from repro.serve import RequestPipeline, ServeConfig, ServeMetrics
from repro.serve.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from repro.serve.pipeline import (
    STATUS_FAILED,
    STATUS_HIT,
    STATUS_SHED,
    STATUS_TIMEOUT,
)
from repro.sim.config import MachineConfig


@pytest.fixture(autouse=True)
def _disarmed():
    uninstall()
    yield
    uninstall()


def _spec(iterations: int = 8) -> JobSpec:
    return JobSpec(
        workload=WorkloadRef.synthetic(cs_fraction=0.2, bus_lines=2,
                                       iterations=iterations,
                                       compute_instr=200),
        policy=PolicySpec.static(2),
        config=MachineConfig.small())


# -- the state machine alone ------------------------------------------

def test_trips_only_after_threshold_consecutive_failures():
    breaker = CircuitBreaker(threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == STATE_CLOSED and breaker.allow()
    breaker.record_failure()
    assert breaker.state == STATE_OPEN
    assert not breaker.allow()


def test_one_served_batch_resets_the_failure_streak():
    breaker = CircuitBreaker(threshold=2)
    breaker.record_failure()
    breaker.record_success()  # mixed batch: somebody got an answer
    breaker.record_failure()
    assert breaker.state == STATE_CLOSED


def test_probe_after_denials_half_open_the_breaker():
    breaker = CircuitBreaker(threshold=1, probe_after=3)
    breaker.record_failure()
    assert breaker.state == STATE_OPEN
    assert not breaker.allow()  # denial 1
    assert not breaker.allow()  # denial 2
    assert breaker.state == STATE_OPEN
    assert not breaker.allow()  # denial 3: the *next* arrival probes
    assert breaker.state == STATE_HALF_OPEN


def test_half_open_admits_exactly_one_probe():
    breaker = CircuitBreaker(threshold=1, probe_after=1)
    breaker.record_failure()
    breaker.allow()
    assert breaker.state == STATE_HALF_OPEN
    assert breaker.allow() is True  # the probe
    assert breaker.allow() is False  # everyone else waits on it
    breaker.record_success()
    assert breaker.state == STATE_CLOSED
    assert breaker.allow()


def test_failed_probe_reopens():
    breaker = CircuitBreaker(threshold=1, probe_after=1)
    breaker.record_failure()
    breaker.allow()
    assert breaker.allow()  # probe admitted
    breaker.record_failure()
    assert breaker.state == STATE_OPEN
    # The shed budget restarts from zero after re-opening.
    assert not breaker.allow()
    assert breaker.state == STATE_HALF_OPEN


def test_note_drain_half_opens_only_while_open():
    breaker = CircuitBreaker(threshold=1, probe_after=100)
    breaker.note_drain()
    assert breaker.state == STATE_CLOSED  # no-op when closed
    breaker.record_failure()
    breaker.note_drain()  # evidence the backend still drains
    assert breaker.state == STATE_HALF_OPEN


def test_threshold_zero_disables_the_breaker():
    breaker = CircuitBreaker(threshold=0)
    assert not breaker.enabled
    for _ in range(10):
        breaker.record_failure()
    assert breaker.state == STATE_CLOSED and breaker.allow()


def test_to_dict_snapshot():
    breaker = CircuitBreaker(threshold=4, probe_after=6)
    breaker.record_failure()
    assert breaker.to_dict() == {
        "state": STATE_CLOSED, "threshold": 4, "probe_after": 6,
        "consecutive_failures": 1}


# -- wired into the pipeline ------------------------------------------

class _FlakyRunner:
    """Runner double that fails outright until ``broken`` is cleared."""

    def __init__(self) -> None:
        self.broken = True
        self.calls = 0

    def resolve(self, specs):
        self.calls += 1
        if self.broken:
            raise JobError("backend down")
        return [JobResolution(key=spec.key(), status="computed",
                              backend="serial", result={"ok": True})
                for spec in specs]


def _pipeline(config: ServeConfig, runner, cache=None):
    metrics = ServeMetrics()
    pipeline = RequestPipeline(config, metrics, cache,
                               runner_factory=lambda: runner)
    return pipeline, metrics


def test_pipeline_trips_sheds_then_recovers_through_a_probe():
    runner = _FlakyRunner()
    config = ServeConfig(workers=1, breaker_threshold=2,
                         breaker_probe_after=2)
    pipeline, metrics = _pipeline(config, runner)

    async def go():
        await pipeline.start()
        outcomes = []
        # Two failed batches trip the breaker...
        for n in (1, 2):
            outcomes.append((await pipeline.resolve(_spec(n))).status)
        assert pipeline.breaker.state == STATE_OPEN
        # ...so the next arrivals shed without touching the backend.
        calls_when_open = runner.calls
        shed1 = await pipeline.resolve(_spec(3))
        shed2 = await pipeline.resolve(_spec(4))
        assert runner.calls == calls_when_open
        # The second denial re-armed the probe; the backend has healed,
        # so the probe batch closes the breaker again.
        runner.broken = False
        assert pipeline.breaker.state == STATE_HALF_OPEN
        probe = await pipeline.resolve(_spec(5))
        await pipeline.drain()
        return outcomes, shed1, shed2, probe

    outcomes, shed1, shed2, probe = asyncio.run(go())
    assert outcomes == [STATUS_FAILED, STATUS_FAILED]
    for shed in (shed1, shed2):
        assert shed.status == STATUS_SHED
        assert shed.error == "circuit open"
        assert shed.retry_after is not None and shed.retry_after > 0
    assert probe.status == "computed"
    assert pipeline.breaker.state == STATE_CLOSED
    assert metrics.shed.value == 2


def test_cache_hit_while_open_is_a_drain_signal(tmp_path):
    runner = _FlakyRunner()
    cache = ResultCache(tmp_path / "c")
    warm = _spec(6)
    cache.put(warm.key(), warm.to_dict(), {"cycles": 123})
    config = ServeConfig(workers=1, breaker_threshold=1,
                         breaker_probe_after=100)
    pipeline, _ = _pipeline(config, runner, cache=cache)

    async def go():
        await pipeline.start()
        first = await pipeline.resolve(_spec(1))
        assert first.status == STATUS_FAILED
        assert pipeline.breaker.state == STATE_OPEN
        # A hit proves an abandoned batch warmed the cache: half-open
        # immediately instead of waiting out 100 shed decisions.
        hit = await pipeline.resolve(warm)
        assert hit.status == STATUS_HIT
        assert pipeline.breaker.state == STATE_HALF_OPEN
        runner.broken = False
        probe = await pipeline.resolve(_spec(2))
        await pipeline.drain()
        return probe

    probe = asyncio.run(go())
    assert probe.status == "computed"
    assert pipeline.breaker.state == STATE_CLOSED


def test_forced_batch_timeout_never_reaches_the_runner():
    runner = _FlakyRunner()
    runner.broken = False
    config = ServeConfig(workers=1, breaker_threshold=2)
    pipeline, _ = _pipeline(config, runner)
    plan = FaultPlan(rules=(
        FaultRule(site="serve.batch_timeout", kind="force", max_fires=1),))

    async def go():
        await pipeline.start()
        with injected(plan) as injector:
            timed_out = await pipeline.resolve(_spec(1))
            assert injector.firing_count() == 1
            recovered = await pipeline.resolve(_spec(2))  # budget spent
        await pipeline.drain()
        return timed_out, recovered

    timed_out, recovered = asyncio.run(go())
    assert timed_out.status == STATUS_TIMEOUT
    assert recovered.status == "computed"
    # The forced timeout counted as a breaker failure but the healthy
    # follow-up batch reset the streak.
    assert runner.calls == 1  # the forced batch never ran
    assert pipeline.breaker.to_dict()["consecutive_failures"] == 0


def test_breaker_state_is_published_in_health_payload():
    from repro.serve import ExperimentServer

    config = ServeConfig(workers=1, breaker_threshold=7,
                         breaker_probe_after=9)
    server = ExperimentServer(config)
    payload = server._health_payload()
    assert payload["breaker"]["state"] == STATE_CLOSED
    assert payload["breaker"]["threshold"] == 7
