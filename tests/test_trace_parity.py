"""Tracer purity: attaching a recorder never changes simulated results.

The trace subsystem's correctness bar (mirroring the sanitizer's and the
jobs subsystem's parity suites): for a CS-limited and a BW-limited
workload, under both the static and the FDT policy, the full
:class:`~repro.fdt.runner.AppRunResult` — every counter, every cycle —
is bit-identical with tracing on or off.
"""

from __future__ import annotations

import pytest

from repro.fdt.policies import FdtMode, FdtPolicy, StaticPolicy
from repro.fdt.runner import run_application
from repro.jobs import JobRunner, JobSpec, PolicySpec, WorkloadRef
from repro.sim.config import MachineConfig, TraceConfig
from repro.sim.machine import Machine
from repro.trace import run_traced
from repro.workloads import get

#: One critical-section-limited and one bandwidth-limited workload.
WORKLOADS = ("PageMine", "ED")
SCALE = 0.1


def _policies():
    return [StaticPolicy(4), FdtPolicy(FdtMode.COMBINED)]


@pytest.mark.parametrize("name", WORKLOADS)
def test_traced_run_results_are_bit_identical(name):
    config = MachineConfig.asplos08_baseline()
    spec = get(name)
    for policy in _policies():
        plain = run_application(spec.build(SCALE), policy, config)
        traced = run_traced(spec.build(SCALE), policy, config)
        assert traced.result == plain  # full dataclass equality
        assert traced.trace.spans  # and the tracer did record


@pytest.mark.parametrize("name", WORKLOADS)
def test_every_trace_feature_toggle_preserves_results(name):
    """Each recorder feature, alone, leaves the simulation untouched."""
    config = MachineConfig.asplos08_baseline()
    spec = get(name)
    policy = FdtPolicy(FdtMode.COMBINED)
    plain = run_application(spec.build(SCALE), policy, config)
    for tc in (
        TraceConfig(timeline=True, counters=False, decisions=False),
        TraceConfig(timeline=False, counters=True, decisions=False),
        TraceConfig(timeline=False, counters=False, decisions=True),
        TraceConfig(sample_interval=97),
        TraceConfig(max_events=10),
    ):
        traced = run_traced(spec.build(SCALE), policy, config,
                            trace_config=tc)
        assert traced.result == plain


def test_disabled_trace_config_attaches_no_recorder():
    config = MachineConfig.asplos08_baseline().with_trace(
        TraceConfig(enabled=False))
    machine = Machine(config)
    assert machine.trace is None
    assert machine.events.sampler is None


def test_traced_jobs_match_untraced_jobs(tmp_path):
    """The jobs layer: tracing a batch never changes its results."""
    config = MachineConfig.asplos08_baseline()
    specs = [JobSpec(workload=WorkloadRef(name="PageMine", scale=SCALE),
                     policy=PolicySpec.static(t), config=config)
             for t in (1, 2)]
    plain = JobRunner().run(specs)
    traced_runner = JobRunner(trace_dir=str(tmp_path / "traces"))
    assert traced_runner.run(specs) == plain
    for entry, spec in zip(traced_runner.manifest.entries, specs):
        assert entry.trace_path.endswith(spec.key())
