"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.sim.config import MachineConfig
from repro.sim.machine import Machine

try:  # Soak profiles for the nightly chaos workflow.
    from hypothesis import HealthCheck, settings

    settings.register_profile("ci", deadline=None)
    settings.register_profile(
        "soak",
        max_examples=1000,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    # Select with REPRO_HYPOTHESIS_PROFILE=soak (the chaos-soak
    # workflow does); default stays the library default locally.
    _profile = os.environ.get("REPRO_HYPOTHESIS_PROFILE")
    if _profile:
        settings.load_profile(_profile)
except ImportError:  # pragma: no cover - property tests skip themselves
    pass


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch) -> None:
    """Point the jobs result cache at a per-test directory.

    Keeps tests away from the user's real ~/.cache/repro and gives every
    test a cold cache, so hit/miss assertions are deterministic.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture
def baseline_config() -> MachineConfig:
    """The paper's Table 1 machine."""
    return MachineConfig.asplos08_baseline()


@pytest.fixture
def small_config() -> MachineConfig:
    """A small machine for fast unit tests (8 cores, tiny caches)."""
    return MachineConfig.small()


@pytest.fixture
def machine(baseline_config: MachineConfig) -> Machine:
    return Machine(baseline_config)


@pytest.fixture
def small_machine(small_config: MachineConfig) -> Machine:
    return Machine(small_config)
