"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import EventQueue


def test_starts_at_cycle_zero():
    assert EventQueue().now == 0


def test_events_run_in_time_order():
    q = EventQueue()
    seen = []
    q.schedule(30, lambda: seen.append(30))
    q.schedule(10, lambda: seen.append(10))
    q.schedule(20, lambda: seen.append(20))
    q.run()
    assert seen == [10, 20, 30]


def test_ties_break_in_schedule_order():
    q = EventQueue()
    seen = []
    for tag in ("a", "b", "c"):
        q.schedule(5, lambda t=tag: seen.append(t))
    q.run()
    assert seen == ["a", "b", "c"]


def test_now_advances_to_event_time():
    q = EventQueue()
    times = []
    q.schedule(17, lambda: times.append(q.now))
    q.run()
    assert times == [17]
    assert q.now == 17


def test_scheduling_in_the_past_raises():
    q = EventQueue()
    q.schedule(10, lambda: None)
    q.run()
    with pytest.raises(SimulationError):
        q.schedule(5, lambda: None)


def test_schedule_at_current_time_is_allowed():
    q = EventQueue()
    seen = []
    q.schedule(10, lambda: q.schedule(10, lambda: seen.append("nested")))
    q.run()
    assert seen == ["nested"]


def test_schedule_in_is_relative():
    q = EventQueue()
    q.schedule(10, lambda: q.schedule_in(5, lambda: None))
    q.run()
    assert q.now == 15


def test_run_until_leaves_future_events_queued():
    q = EventQueue()
    seen = []
    q.schedule(10, lambda: seen.append(10))
    q.schedule(100, lambda: seen.append(100))
    q.run(until=50)
    assert seen == [10]
    assert q.now == 50
    assert len(q) == 1
    q.run()
    assert seen == [10, 100]


def test_run_until_with_empty_queue_advances_clock():
    q = EventQueue()
    q.run(until=42)
    assert q.now == 42


def test_step_runs_one_event():
    q = EventQueue()
    seen = []
    q.schedule(1, lambda: seen.append(1))
    q.schedule(2, lambda: seen.append(2))
    assert q.step() is True
    assert seen == [1]
    assert q.step() is True
    assert q.step() is False
    assert seen == [1, 2]


def test_events_scheduled_during_run_execute():
    q = EventQueue()
    seen = []

    def first():
        seen.append("first")
        q.schedule(q.now + 5, lambda: seen.append("second"))

    q.schedule(1, first)
    q.run()
    assert seen == ["first", "second"]
    assert q.now == 6


def test_len_reflects_pending_events():
    q = EventQueue()
    assert len(q) == 0
    q.schedule(1, lambda: None)
    q.schedule(2, lambda: None)
    assert len(q) == 2
    q.run()
    assert len(q) == 0


class _RecordingSampler:
    """Minimal Sampler: records every cycle the clock advances to."""

    def __init__(self) -> None:
        self.advances: list[int] = []

    def on_advance(self, now: int) -> None:
        self.advances.append(now)


def test_sampler_observes_every_advance():
    q = EventQueue()
    q.sampler = sampler = _RecordingSampler()
    q.schedule(3, lambda: None)
    q.schedule(3, lambda: None)  # same-cycle event: no second advance
    q.schedule(9, lambda: None)
    q.run()
    assert sampler.advances == [3, 9]


def test_run_until_clamp_notifies_sampler():
    """Clamping to ``until`` is a clock advance like any other: the
    sampler must see it whether or not an event lands on the bound,
    and whether or not any event fired during the run at all."""
    q = EventQueue()
    q.sampler = sampler = _RecordingSampler()
    q.schedule(10, lambda: None)
    q.schedule(100, lambda: None)
    q.run(until=50)
    assert q.now == 50
    assert sampler.advances == [10, 50]

    # Empty-drain clamp: no event before the bound.
    q.run(until=80)
    assert q.now == 80
    assert sampler.advances == [10, 50, 80]

    # No regression to a time already reached: until == now is a no-op.
    q.run(until=80)
    assert sampler.advances == [10, 50, 80]

    q.run()
    assert sampler.advances == [10, 50, 80, 100]


def test_step_notifies_sampler_only_on_advance():
    q = EventQueue()
    q.sampler = sampler = _RecordingSampler()
    q.schedule(0, lambda: None)  # fires at the current cycle
    q.schedule(4, lambda: None)
    q.step()
    assert sampler.advances == []
    q.step()
    assert sampler.advances == [4]


def test_out_of_order_schedules_interleave_with_fifo_tail():
    """Mixed heap/tail usage preserves the exact (time, seq) order.

    Monotone schedules take the FIFO tail; scheduling *earlier* than
    the pending tail head must divert to the heap and still pop first.
    """
    q = EventQueue()
    seen = []
    q.schedule(50, lambda: seen.append("d"))   # tail
    q.schedule(20, lambda: seen.append("b"))   # earlier -> heap
    q.schedule(10, lambda: seen.append("a"))   # earlier still -> heap
    q.schedule(20, lambda: seen.append("c"))   # ties with "b"; later seq

    def late():
        seen.append("e")
        q.schedule(q.now, lambda: seen.append("f"))  # same-cycle re-entry

    q.schedule(60, late)
    q.run()
    assert seen == ["a", "b", "c", "d", "e", "f"]
    assert q.now == 60


def test_interleaving_identical_with_slow_paths(monkeypatch):
    """The split queue's pop order must equal the pure-heap reference."""
    schedule = [(7, "a"), (3, "b"), (7, "c"), (3, "d"), (12, "e"),
                (5, "f"), (12, "g"), (1, "h")]

    def drain() -> list[str]:
        q = EventQueue()
        seen: list[str] = []
        for when, tag in schedule:
            q.schedule(when, lambda t=tag: seen.append(t))
        q.run()
        return seen

    monkeypatch.delenv("REPRO_SLOW_PATHS", raising=False)
    fast = drain()
    monkeypatch.setenv("REPRO_SLOW_PATHS", "1")
    assert fast == drain() == ["h", "b", "d", "f", "a", "c", "e", "g"]
