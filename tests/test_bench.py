"""Tests for the ``repro bench`` harness, report schema, and gate."""

from __future__ import annotations

import json

import pytest

from repro.bench import compare, harness, scenarios
from repro.errors import ReproError

# -- scenarios ---------------------------------------------------------------


def test_suite_has_the_four_fixed_scenarios():
    names = [s.name for s in scenarios.SCENARIOS]
    assert names == ["compute-bound", "miss-bound", "cs-heavy",
                     "fdt-train-run"]


def test_select_none_returns_full_suite():
    assert scenarios.select(None) == scenarios.SCENARIOS
    assert scenarios.select([]) == scenarios.SCENARIOS


def test_select_subset_preserves_request_order():
    picked = scenarios.select(["cs-heavy", "compute-bound"])
    assert [s.name for s in picked] == ["cs-heavy", "compute-bound"]


def test_select_unknown_scenario_raises():
    with pytest.raises(ReproError, match="no-such-scenario"):
        scenarios.select(["no-such-scenario"])


def test_scenarios_are_deterministic():
    """Same scenario, same size -> identical simulated work, twice."""
    (scn,) = scenarios.select(["compute-bound"])
    first = scn.run(quick=True)
    second = scn.run(quick=True)
    assert first == second
    assert first.sim_cycles > 0 and first.sim_ops > 0


# -- harness / report schema -------------------------------------------------


def _tiny_suite(**kwargs):
    return harness.run_suite(names=["compute-bound"], quick=True, **kwargs)


def test_run_suite_report_shape(tmp_path):
    result = _tiny_suite(trials=2, warmup=1)
    doc = result.to_dict()
    assert doc["schema"] == harness.SCHEMA
    assert doc["quick"] is True
    assert set(doc["host"]) == {"python", "implementation", "platform",
                                "machine", "cpu_count"}
    (entry,) = doc["scenarios"]
    assert entry["name"] == "compute-bound"
    assert entry["trials"] == 2 and entry["warmup"] == 1
    assert len(entry["host_seconds"]) == 2
    assert entry["sim_cycles"] > 0
    assert entry["sim_cycles_per_host_second"] > 0
    path = harness.write_json(result, tmp_path / "BENCH_sim.json")
    assert json.loads(path.read_text())["schema"] == harness.SCHEMA


def test_run_suite_validates_arguments():
    with pytest.raises(ValueError):
        _tiny_suite(trials=0)
    with pytest.raises(ValueError):
        _tiny_suite(warmup=-1)


def test_nondeterministic_scenario_is_an_error(monkeypatch):
    flips = iter([scenarios.ScenarioStats(sim_cycles=10, sim_ops=10),
                  scenarios.ScenarioStats(sim_cycles=11, sim_ops=10)])
    bad = scenarios.Scenario("bad", "flips cycle counts",
                             lambda quick: lambda: next(flips))
    with pytest.raises(AssertionError, match="nondeterministic"):
        harness._run_one(bad, quick=True, trials=2, warmup=0)


def test_median_and_mad_are_robust_to_one_outlier():
    result = harness.ScenarioResult(
        name="x", description="", trials=5, warmup=0,
        sim_cycles=1000, sim_ops=10,
        host_seconds=[0.10, 0.11, 0.10, 0.12, 9.00])
    assert result.median_host_seconds == 0.11
    assert result.mad_host_seconds == pytest.approx(0.01)
    assert result.sim_cycles_per_host_second == pytest.approx(1000 / 0.11)


# -- compare gate ------------------------------------------------------------


def _report(rates: dict[str, float], host: str = "h1") -> dict:
    return {
        "schema": harness.SCHEMA,
        "host": {"id": host},
        "scenarios": [
            {"name": name, "sim_cycles_per_host_second": rate}
            for name, rate in rates.items()
        ],
    }


def test_compare_passes_within_threshold():
    report = compare.compare_reports(_report({"a": 100.0, "b": 200.0}),
                                     _report({"a": 75.0, "b": 260.0}))
    assert report.ok
    assert not report.regressions
    assert "PASS" in report.format()


def test_compare_fails_past_threshold():
    report = compare.compare_reports(_report({"a": 100.0}),
                                     _report({"a": 65.0}))
    assert not report.ok
    (regressed,) = report.regressions
    assert regressed.name == "a"
    assert regressed.ratio == pytest.approx(0.65)
    assert "REGRESSED" in report.format()
    assert "FAIL" in report.format()


def test_compare_missing_scenario_fails_gate():
    report = compare.compare_reports(_report({"a": 100.0, "gone": 50.0}),
                                     _report({"a": 100.0}))
    assert not report.ok
    assert report.missing == ("gone",)
    assert "MISSING" in report.format()


def test_compare_new_scenario_is_not_gated():
    report = compare.compare_reports(_report({"a": 100.0}),
                                     _report({"a": 100.0, "new": 1.0}))
    assert report.ok
    assert report.extra == ("new",)


def test_compare_custom_threshold():
    base, cur = _report({"a": 100.0}), _report({"a": 89.0})
    assert compare.compare_reports(base, cur, threshold=0.20).ok
    assert not compare.compare_reports(base, cur, threshold=0.10).ok
    with pytest.raises(ReproError):
        compare.compare_reports(base, cur, threshold=1.5)


def test_compare_notes_host_mismatch():
    report = compare.compare_reports(_report({"a": 100.0}, host="h1"),
                                     _report({"a": 100.0}, host="h2"))
    assert report.ok  # informational only
    assert not report.host_matches
    assert "fingerprints differ" in report.format()


def test_load_report_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "something-else/9"}))
    with pytest.raises(ReproError, match="schema"):
        compare.load_report(path)
    path.write_text("{not json")
    with pytest.raises(ReproError, match="not valid JSON"):
        compare.load_report(path)
    with pytest.raises(ReproError, match="cannot read"):
        compare.load_report(tmp_path / "absent.json")


def test_compare_files_end_to_end(tmp_path):
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    base.write_text(json.dumps(_report({"a": 100.0})))
    cur.write_text(json.dumps(_report({"a": 99.0})))
    assert compare.compare_files(base, cur).ok
    assert compare.main([str(base), str(cur)]) == 0
    cur.write_text(json.dumps(_report({"a": 10.0})))
    assert compare.main([str(base), str(cur)]) == 1
    assert compare.main([str(base), str(tmp_path / "nope.json")]) == 2
