"""Additional tests for the application runner plumbing."""

from __future__ import annotations

from repro.fdt.kernel import FunctionKernel
from repro.fdt.policies import StaticPolicy
from repro.fdt.runner import Application, run_application
from repro.isa.ops import Compute, Load
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine

CFG = MachineConfig.small()


def kernel(n=16, name="k"):
    return FunctionKernel(name, total_iterations=n,
                          body=lambda i: iter([Compute(100)]))


def test_application_single_uses_kernel_name():
    app = Application.single(kernel(name="mykernel"))
    assert app.name == "mykernel"
    assert Application.single(kernel(), name="custom").name == "custom"


def test_run_application_builds_fresh_machine_by_default():
    a = run_application(Application.single(kernel()), StaticPolicy(2), CFG)
    b = run_application(Application.single(kernel()), StaticPolicy(2), CFG)
    assert a.cycles == b.cycles  # identical fresh machines


def test_run_application_reuses_supplied_machine():
    m = Machine(CFG)
    first = run_application(Application.single(kernel()), StaticPolicy(2),
                            machine=m)
    second = run_application(Application.single(kernel()), StaticPolicy(2),
                             machine=m)
    # The second run starts where the first left off (warm machine).
    assert m.now >= first.cycles + second.cycles


def test_supplied_machine_keeps_caches_warm():
    def mem_kernel():
        return FunctionKernel(
            "mem", total_iterations=12,
            body=lambda i: iter([Load((1 << 21) + (i % 4) * 64)]))

    m = Machine(CFG)
    run_application(Application.single(mem_kernel()), StaticPolicy(1),
                    machine=m)
    misses_after_first = m.memsys.l3.misses
    run_application(Application.single(mem_kernel()), StaticPolicy(1),
                    machine=m)
    assert m.memsys.l3.misses == misses_after_first  # all warm


def test_result_totals_across_kernels():
    app = Application(name="pair", kernels=(kernel(8, "a"), kernel(8, "b")))
    res = run_application(app, StaticPolicy(2), CFG)
    total = res.result
    parts = [k.result for k in res.kernel_infos]
    assert total.cycles == sum(p.cycles for p in parts)
    assert total.retired_instructions == sum(p.retired_instructions
                                             for p in parts)


def test_power_is_time_weighted_across_kernels():
    app = Application(name="pair", kernels=(kernel(64, "big"),
                                            kernel(8, "small")))
    res = run_application(app, StaticPolicy(4), CFG)
    assert 0 < res.power <= CFG.num_cores


def test_kernel_infos_preserve_order():
    app = Application(name="pair", kernels=(kernel(8, "first"),
                                            kernel(8, "second")))
    res = run_application(app, StaticPolicy(1), CFG)
    assert [k.kernel_name for k in res.kernel_infos] == ["first", "second"]
